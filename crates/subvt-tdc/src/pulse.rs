//! Pulse-width shrinking (paper Sec. II-A, Eq. 1).
//!
//! During measurement "the reference signal circulates by a delay
//! resulting from INV-NOR circuit and is shrunk by a specific
//! pulse-width/cycle until it diminishes completely". The shrink per
//! circulation from stage (n−1) to (n+1) is
//!
//! ```text
//! ΔW = (β − 1/β) · C_L(n−1) · (1/kp(n−1) − 1/kn(n−1)) · δi     (Eq. 1)
//! ```
//!
//! where `β` is the aspect-ratio scaling of the n-th stage (β > 1 →
//! shrink, β < 1 → expand), `C_L` the effective load capacitance and
//! `kp`, `kn` the transconductance parameters.

use std::fmt;

use subvt_device::units::{Farads, Seconds};

/// Electrical parameters of the width-controlling stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseShrinkStage {
    /// Aspect-ratio factor β of the n-th stage relative to the others.
    pub beta: f64,
    /// Effective load capacitance `C_L`.
    pub load_cap: Farads,
    /// pMOS transconductance parameter `kp` (A/V²).
    pub kp: f64,
    /// nMOS transconductance parameter `kn` (A/V²).
    pub kn: f64,
    /// Proportionality factor δ (V; absorbs the supply-dependent swing
    /// term of the full derivation).
    pub delta: f64,
}

impl PulseShrinkStage {
    /// A representative 0.13 µm stage: β = 1.2, C_L = 5 fF, hole
    /// transconductance about half the electron one.
    pub fn nominal_130nm() -> PulseShrinkStage {
        PulseShrinkStage {
            beta: 1.2,
            load_cap: Farads::from_femtos(5.0),
            kp: 60e-6,
            kn: 140e-6,
            delta: 0.5,
        }
    }

    /// Returns the stage with a different β.
    pub fn with_beta(mut self, beta: f64) -> PulseShrinkStage {
        self.beta = beta;
        self
    }

    /// Width change per circulation, Eq. 1. Positive = the pulse
    /// shrinks; negative = it expands.
    ///
    /// # Panics
    ///
    /// Panics if β, kp or kn is not positive.
    pub fn width_change(&self) -> Seconds {
        assert!(self.beta > 0.0, "beta must be positive");
        assert!(
            self.kp > 0.0 && self.kn > 0.0,
            "transconductances must be positive"
        );
        let geometry = self.beta - 1.0 / self.beta;
        let drive = 1.0 / self.kp - 1.0 / self.kn;
        Seconds(geometry * self.load_cap.value() * drive * self.delta)
    }

    /// True when this sizing shrinks the pulse (β > 1 with kp < kn).
    pub fn shrinks(&self) -> bool {
        self.width_change().value() > 0.0
    }
}

impl fmt::Display for PulseShrinkStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "β={:.2}, ΔW={:.3} ps/cycle",
            self.beta,
            self.width_change().picos()
        )
    }
}

/// Result of circulating a pulse until it vanishes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShrinkResult {
    /// Circulations completed before the pulse vanished.
    pub cycles: u32,
    /// Width remaining when the pulse fell below the vanish threshold
    /// (the quantization residue of the conversion).
    pub residual: Seconds,
}

/// A pulse-shrinking ring: a circulating delay loop containing one
/// width-controlling stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseShrinkRing {
    stage: PulseShrinkStage,
    /// Minimum propagatable pulse width: narrower pulses are swallowed
    /// by the ring's own gates (the reason "it is difficult to keep the
    /// pulsewidth shrinking to zero").
    vanish_width: Seconds,
}

impl PulseShrinkRing {
    /// Creates a ring around `stage`; pulses narrower than
    /// `vanish_width` die.
    ///
    /// # Panics
    ///
    /// Panics if `vanish_width` is negative.
    pub fn new(stage: PulseShrinkStage, vanish_width: Seconds) -> PulseShrinkRing {
        assert!(
            vanish_width.value() >= 0.0,
            "vanish width must be non-negative"
        );
        PulseShrinkRing {
            stage,
            vanish_width,
        }
    }

    /// The width-controlling stage.
    pub fn stage(&self) -> PulseShrinkStage {
        self.stage
    }

    /// Circulates a pulse of width `initial` until it vanishes or
    /// `max_cycles` is reached (an expanding ring never vanishes).
    ///
    /// Returns `None` when the pulse survives `max_cycles` circulations
    /// (β ≤ 1, or ΔW too small).
    pub fn circulate(&self, initial: Seconds, max_cycles: u32) -> Option<ShrinkResult> {
        let dw = self.stage.width_change().value();
        if dw <= 0.0 {
            return None;
        }
        let mut width = initial.value();
        for cycles in 0..max_cycles {
            if width <= self.vanish_width.value() {
                return Some(ShrinkResult {
                    cycles,
                    residual: Seconds(width),
                });
            }
            width -= dw;
        }
        None
    }

    /// Converts a vanish count back to a measured pulse width (the
    /// time-to-digital conversion of the shrinking method).
    pub fn width_from_cycles(&self, cycles: u32) -> Seconds {
        Seconds(self.vanish_width.value() + self.stage.width_change().value() * f64::from(cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_above_one_shrinks() {
        let s = PulseShrinkStage::nominal_130nm();
        assert!(s.beta > 1.0);
        assert!(s.shrinks());
        assert!(s.width_change().value() > 0.0);
    }

    #[test]
    fn beta_below_one_expands() {
        let s = PulseShrinkStage::nominal_130nm().with_beta(0.8);
        assert!(!s.shrinks());
        assert!(s.width_change().value() < 0.0);
    }

    #[test]
    fn beta_one_is_neutral() {
        let s = PulseShrinkStage::nominal_130nm().with_beta(1.0);
        assert!(s.width_change().value().abs() < 1e-30);
    }

    #[test]
    fn shrink_grows_with_beta() {
        let base = PulseShrinkStage::nominal_130nm();
        let w12 = base.with_beta(1.2).width_change().value();
        let w15 = base.with_beta(1.5).width_change().value();
        assert!(w15 > w12);
    }

    #[test]
    fn balanced_transconductance_means_no_shrink() {
        let mut s = PulseShrinkStage::nominal_130nm();
        s.kp = s.kn;
        assert!(s.width_change().value().abs() < 1e-30);
    }

    #[test]
    fn circulation_counts_width() {
        let ring =
            PulseShrinkRing::new(PulseShrinkStage::nominal_130nm(), Seconds::from_picos(10.0));
        let dw = ring.stage().width_change();
        let w0 = Seconds(dw.value() * 100.0 + 11e-12);
        let r = ring.circulate(w0, 10_000).expect("shrinks");
        assert_eq!(r.cycles, 101);
        assert!(r.residual.value() <= 10e-12 + dw.value());
        // Round trip: reconstructed width within one ΔW of the input.
        let reconstructed = ring.width_from_cycles(r.cycles);
        assert!((reconstructed.value() - w0.value()).abs() <= dw.value() + 1e-15);
    }

    #[test]
    fn wider_pulse_needs_more_cycles() {
        let ring = PulseShrinkRing::new(PulseShrinkStage::nominal_130nm(), Seconds::ZERO);
        let a = ring.circulate(Seconds::from_nanos(1.0), 1_000_000).unwrap();
        let b = ring.circulate(Seconds::from_nanos(2.0), 1_000_000).unwrap();
        assert!(b.cycles > a.cycles);
        assert!((f64::from(b.cycles) / f64::from(a.cycles) - 2.0).abs() < 0.02);
    }

    #[test]
    fn expanding_ring_never_vanishes() {
        let ring = PulseShrinkRing::new(
            PulseShrinkStage::nominal_130nm().with_beta(0.9),
            Seconds::from_picos(10.0),
        );
        assert_eq!(ring.circulate(Seconds::from_nanos(1.0), 10_000), None);
    }

    #[test]
    fn offset_error_is_small_versus_dcdc_lsb() {
        // Paper: "the error of the offset offered by pulse width
        // shrinking doesn't bring so much variations to the actual
        // DC-DC conversion" — the residual is bounded by one ΔW, which
        // is far below the time equivalent of one 18.75 mV step at the
        // paper's operating points (tens of ns of delay change).
        let ring =
            PulseShrinkRing::new(PulseShrinkStage::nominal_130nm(), Seconds::from_picos(10.0));
        let dw = ring.stage().width_change();
        assert!(dw.picos() < 100.0, "ΔW = {} ps", dw.picos());
    }

    #[test]
    fn display_reports_shrink_rate() {
        let s = PulseShrinkStage::nominal_130nm();
        assert!(format!("{s}").contains("ps/cycle"));
    }
}
