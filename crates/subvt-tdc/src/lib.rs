//! # subvt-tdc
//!
//! The time-to-digital-converter variation sensor of *"Variation
//! Resilient Adaptive Controller for Subthreshold Circuits"*
//! (DATE 2009) — the paper's key novel component.
//!
//! * [`delay_line`] — the INV-NOR delay replica running at the measured
//!   supply, analytic and structural (gate-level netlist) forms;
//! * [`quantizer`] — the D-flip-flop sampling bank that snapshots the
//!   Ref_clk waveform along the line, including the double-latch
//!   failure at fast Ref_clk;
//! * [`sensor`] — the calibrated variation sensor: per-voltage-word
//!   signature tables and deviation extraction in 18.75 mV LSBs;
//! * [`table1`] — reproduction of the paper's Table I signatures;
//! * [`pulse`] — the Eq. 1 pulse-shrinking model (β sizing);
//! * [`metastability`] — flip-flop upset modelling and its interaction
//!   with bubble-tolerant encoding.
//!
//! ## Example
//!
//! Sense a slow die the way the paper's worked example does (TT-signed
//! controller, slower silicon, word 19 ≈ 356 mV):
//!
//! ```
//! use subvt_device::corner::ProcessCorner;
//! use subvt_device::delay::GateMismatch;
//! use subvt_device::mosfet::Environment;
//! use subvt_device::technology::Technology;
//! use subvt_tdc::sensor::{word_voltage, SensorConfig, VariationSensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::st_130nm();
//! let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
//! let deviation = sensor.sense(
//!     &tech,
//!     19,
//!     word_voltage(19),
//!     Environment::at_corner(ProcessCorner::Ss),
//!     GateMismatch::NOMINAL,
//! )?;
//! assert!(deviation < 0); // the die reads "slow" → compensate upward
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counter_method;
pub mod delay_line;
pub mod metastability;
pub mod pulse;
pub mod quantizer;
pub mod sensor;
pub mod table1;
pub mod vernier;

pub use counter_method::CounterSensor;
pub use delay_line::{CellKind, DelayLine};
pub use metastability::MetastabilityModel;
pub use pulse::{PulseShrinkRing, PulseShrinkStage, ShrinkResult};
pub use quantizer::{Quantizer, RefClock};
pub use sensor::{voltage_word, word_voltage, SenseError, SensorConfig, VariationSensor};
pub use table1::{reproduce_table1, Table1Row, PAPER_SIGNATURES, SAMPLE_ANCHOR};
pub use vernier::{VernierReading, VernierTdc};
