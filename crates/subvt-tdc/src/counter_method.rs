//! The paper's "alternate method": a counter-based feedback conversion.
//!
//! Sec. II-A: "Alternate method employs feedback loop where the range
//! of the conversion can be controlled by keeping track of a single
//! counter with resolution higher than the direct method or varying
//! the 'Ref_clk' to a much lower frequency."
//!
//! A replica ring oscillator runs at the measured supply; a counter
//! counts its edges inside a fixed gate window. The count is a direct
//! digital image of the replica frequency — range is set by the window
//! length instead of the line length, so one configuration covers the
//! whole supply range (at the cost of a longer conversion).

use subvt_device::delay::{GateMismatch, SupplyRangeError};
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Seconds, Volts};

use crate::delay_line::{CellKind, DelayLine};

/// The counter-based sensor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSensor {
    /// Ring length in delay cells (odd; the ring inverts once).
    pub ring_stages: u8,
    /// Gate window during which edges are counted.
    pub window: Seconds,
    /// Counter width in bits (the count saturates at 2^width − 1).
    pub counter_bits: u8,
}

impl CounterSensor {
    /// A sensor with a 15-cell replica ring and the given window.
    ///
    /// # Panics
    ///
    /// Panics unless the ring length is odd and ≥ 3, the window
    /// positive, and the counter width in 1..=32.
    pub fn new(ring_stages: u8, window: Seconds, counter_bits: u8) -> CounterSensor {
        assert!(
            ring_stages >= 3 && ring_stages % 2 == 1,
            "ring needs an odd stage count ≥ 3"
        );
        assert!(window.value() > 0.0, "window must be positive");
        assert!(
            (1..=32).contains(&counter_bits),
            "counter width out of range"
        );
        CounterSensor {
            ring_stages,
            window,
            counter_bits,
        }
    }

    /// A configuration covering the full 0.1-1.2 V range with a 100 µs
    /// window (the "much lower frequency" regime).
    pub fn full_range() -> CounterSensor {
        CounterSensor::new(15, Seconds::from_micros(100.0), 24)
    }

    /// Maximum representable count.
    pub fn max_count(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }

    /// The replica ring's oscillation period at an operating point.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn ring_period(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError> {
        let line = DelayLine::new(self.ring_stages, CellKind::InvNor).with_mismatch(mismatch);
        let cell = line.cell_delay(tech, vdd, env)?;
        Ok(cell * (2.0 * f64::from(self.ring_stages)))
    }

    /// Counts ring edges inside the window. A supply below the
    /// functional floor reads zero (the ring does not oscillate).
    pub fn measure(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> u64 {
        match self.ring_period(tech, vdd, env, mismatch) {
            Ok(period) => {
                let count = (self.window.value() / period.value()).floor() as u64;
                count.min(self.max_count())
            }
            Err(_) => 0,
        }
    }

    /// Voltage resolution around an operating point: the supply step
    /// that changes the count by one, estimated by finite differences.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn resolution_at(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Volts, SupplyRangeError> {
        let dv = Volts(0.002);
        let p0 = self.ring_period(tech, vdd, env, GateMismatch::NOMINAL)?;
        let p1 = self.ring_period(tech, vdd + dv, env, GateMismatch::NOMINAL)?;
        let c0 = self.window.value() / p0.value();
        let c1 = self.window.value() / p1.value();
        let counts_per_volt = (c1 - c0) / dv.volts();
        if counts_per_volt <= 0.0 {
            return Ok(Volts(f64::INFINITY));
        }
        Ok(Volts(1.0 / counts_per_volt))
    }
}

impl Default for CounterSensor {
    fn default() -> Self {
        CounterSensor::full_range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::corner::ProcessCorner;

    fn fixture() -> (Technology, CounterSensor) {
        (Technology::st_130nm(), CounterSensor::full_range())
    }

    #[test]
    fn count_is_monotone_in_supply() {
        let (tech, sensor) = fixture();
        let env = Environment::nominal();
        let mut last = 0u64;
        for mv in (150..=1200).step_by(75) {
            let c = sensor.measure(
                &tech,
                Volts::from_millivolts(f64::from(mv)),
                env,
                GateMismatch::NOMINAL,
            );
            assert!(c > last, "count fell at {mv} mV: {c} <= {last}");
            last = c;
        }
    }

    #[test]
    fn one_configuration_covers_the_full_range() {
        // The direct method needs per-band Ref_clk; the counter method
        // reads non-zero, non-saturated counts from 150 mV to 1.2 V.
        let (tech, sensor) = fixture();
        let env = Environment::nominal();
        for mv in [150.0, 300.0, 600.0, 900.0, 1200.0] {
            let c = sensor.measure(
                &tech,
                Volts::from_millivolts(mv),
                env,
                GateMismatch::NOMINAL,
            );
            assert!(c > 0, "{mv} mV reads zero");
            assert!(c < sensor.max_count(), "{mv} mV saturates");
        }
    }

    #[test]
    fn slow_corner_counts_less() {
        let (tech, sensor) = fixture();
        let v = Volts(0.25);
        let tt = sensor.measure(&tech, v, Environment::nominal(), GateMismatch::NOMINAL);
        let ss = sensor.measure(
            &tech,
            v,
            Environment::at_corner(ProcessCorner::Ss),
            GateMismatch::NOMINAL,
        );
        assert!(ss < tt, "tt {tt} ss {ss}");
    }

    #[test]
    fn below_floor_reads_zero() {
        let (tech, sensor) = fixture();
        assert_eq!(
            sensor.measure(
                &tech,
                Volts(0.05),
                Environment::nominal(),
                GateMismatch::NOMINAL
            ),
            0
        );
    }

    #[test]
    fn longer_window_refines_resolution() {
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let short = CounterSensor::new(15, Seconds::from_micros(10.0), 24);
        let long = CounterSensor::new(15, Seconds::from_micros(1000.0), 24);
        let v = Volts(0.25);
        let r_short = short.resolution_at(&tech, v, env).unwrap();
        let r_long = long.resolution_at(&tech, v, env).unwrap();
        assert!(
            r_long.volts() < r_short.volts() / 50.0,
            "short {r_short}, long {r_long}"
        );
    }

    #[test]
    fn subthreshold_resolution_beats_one_lsb_with_full_range_config() {
        // "with resolution higher than the direct method": around the
        // MEP voltages the 100 µs window resolves well below 18.75 mV.
        let (tech, sensor) = fixture();
        let r = sensor
            .resolution_at(&tech, Volts(0.22), Environment::nominal())
            .unwrap();
        assert!(r.millivolts() < 18.75 / 4.0, "resolution {r}");
    }

    #[test]
    fn counter_saturates_gracefully() {
        let tech = Technology::st_130nm();
        let tiny = CounterSensor::new(3, Seconds::from_micros(1000.0), 8);
        let c = tiny.measure(
            &tech,
            Volts(1.2),
            Environment::nominal(),
            GateMismatch::NOMINAL,
        );
        assert_eq!(c, tiny.max_count());
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_ring_rejected() {
        let _ = CounterSensor::new(4, Seconds::from_micros(1.0), 16);
    }
}
