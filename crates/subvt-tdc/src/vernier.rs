//! Vernier time-to-digital conversion: sub-cell-delay resolution.
//!
//! The paper's direct quantizer resolves one delay-cell per stage. A
//! Vernier TDC launches the measured edge down a *slow* line and the
//! sampling edge down a slightly *faster* line; the stage where the
//! fast edge overtakes the slow one measures the input interval with a
//! resolution of `t_slow − t_fast` — the classic way to buy resolution
//! beyond a single gate delay, included here as the natural extension
//! of the paper's sensor (their ref. \[16\] builds a related structure).

use subvt_device::delay::{GateMismatch, SupplyRangeError};
use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_device::units::{Seconds, Volts};

use crate::delay_line::{CellKind, DelayLine};

/// A Vernier TDC built from two replica lines whose cells differ by a
/// deliberate sizing/fanout skew.
#[derive(Debug, Clone, PartialEq)]
pub struct VernierTdc {
    stages: u16,
    /// Fanout factor of the slow line's cells relative to the fast
    /// line's (> 1; sets the resolution).
    skew: f64,
}

/// Outcome of one Vernier conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VernierReading {
    /// The fast edge caught the slow edge at this stage.
    Caught {
        /// Stage index of the catch (1-based).
        stage: u16,
    },
    /// The interval exceeded the line's range.
    OutOfRange,
}

impl VernierTdc {
    /// Creates a Vernier TDC.
    ///
    /// # Panics
    ///
    /// Panics unless `stages ≥ 1` and `skew > 1`.
    pub fn new(stages: u16, skew: f64) -> VernierTdc {
        assert!(stages >= 1, "need at least one stage");
        assert!(skew > 1.0, "slow line must be slower (skew > 1)");
        VernierTdc { stages, skew }
    }

    /// A 256-stage TDC with a 5 % cell skew.
    pub fn fine_grained() -> VernierTdc {
        VernierTdc::new(256, 1.05)
    }

    /// Number of Vernier stages.
    pub fn stages(&self) -> u16 {
        self.stages
    }

    /// Per-stage time resolution at an operating point:
    /// `(skew − 1) × t_cell`.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn resolution(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        let cell = self.fast_cell(tech, vdd, env, GateMismatch::NOMINAL)?;
        Ok(Seconds(cell.value() * (self.skew - 1.0)))
    }

    /// Full measurable range: `stages × resolution`.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn range(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        Ok(self.resolution(tech, vdd, env)? * f64::from(self.stages))
    }

    fn fast_cell(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError> {
        DelayLine::new(64, CellKind::Inverter)
            .with_mismatch(mismatch)
            .cell_delay(tech, vdd, env)
    }

    /// Converts a time interval: the slow edge leads by `interval`, the
    /// fast edge gains `resolution` per stage and catches it at stage
    /// `ceil(interval / resolution)`.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn convert(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        interval: Seconds,
    ) -> Result<VernierReading, SupplyRangeError> {
        let cell = self.fast_cell(tech, vdd, env, mismatch)?;
        let step = cell.value() * (self.skew - 1.0);
        if interval.value() <= 0.0 {
            return Ok(VernierReading::Caught { stage: 1 });
        }
        let stage = (interval.value() / step).ceil();
        if stage > f64::from(self.stages) {
            Ok(VernierReading::OutOfRange)
        } else {
            Ok(VernierReading::Caught {
                stage: stage as u16,
            })
        }
    }

    /// Reconstructs the measured interval from a reading (the midpoint
    /// of the stage's time bin).
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn interval_from(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        reading: VernierReading,
    ) -> Result<Option<Seconds>, SupplyRangeError> {
        match reading {
            VernierReading::OutOfRange => Ok(None),
            VernierReading::Caught { stage } => {
                let step = self.resolution(tech, vdd, env)?;
                Ok(Some(Seconds(step.value() * (f64::from(stage) - 0.5))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Technology, VernierTdc, Environment) {
        (
            Technology::st_130nm(),
            VernierTdc::fine_grained(),
            Environment::nominal(),
        )
    }

    #[test]
    fn resolution_is_a_twentieth_of_a_cell() {
        let (tech, tdc, env) = fixture();
        let vdd = Volts(0.6);
        let cell = DelayLine::new(64, CellKind::Inverter)
            .cell_delay(&tech, vdd, env)
            .unwrap();
        let r = tdc.resolution(&tech, vdd, env).unwrap();
        assert!((r.value() / cell.value() - 0.05).abs() < 1e-9);
        // 5 % of 442 ps ≈ 22 ps: far finer than the direct method's
        // one-cell (442 ps) resolution.
        assert!((r.picos() - 22.1).abs() < 1.0, "{} ps", r.picos());
    }

    #[test]
    fn conversion_round_trips_within_one_bin() {
        let (tech, tdc, env) = fixture();
        let vdd = Volts(0.6);
        let r = tdc.resolution(&tech, vdd, env).unwrap();
        for k in [1.0, 7.3, 42.9, 200.0] {
            let interval = Seconds(r.value() * k);
            let reading = tdc
                .convert(&tech, vdd, env, GateMismatch::NOMINAL, interval)
                .unwrap();
            let back = tdc
                .interval_from(&tech, vdd, env, reading)
                .unwrap()
                .expect("in range");
            assert!(
                (back.value() - interval.value()).abs() <= r.value(),
                "k={k}: {} vs {}",
                back.picos(),
                interval.picos()
            );
        }
    }

    #[test]
    fn reading_is_monotone_in_interval() {
        let (tech, tdc, env) = fixture();
        let vdd = Volts(0.6);
        let r = tdc.resolution(&tech, vdd, env).unwrap();
        let mut last = 0u16;
        for k in 1..=20 {
            let interval = Seconds(r.value() * f64::from(k) * 10.0);
            match tdc
                .convert(&tech, vdd, env, GateMismatch::NOMINAL, interval)
                .unwrap()
            {
                VernierReading::Caught { stage } => {
                    assert!(stage >= last);
                    last = stage;
                }
                VernierReading::OutOfRange => panic!("within range by construction"),
            }
        }
    }

    #[test]
    fn long_interval_is_out_of_range() {
        let (tech, tdc, env) = fixture();
        let vdd = Volts(0.6);
        let range = tdc.range(&tech, vdd, env).unwrap();
        let reading = tdc
            .convert(
                &tech,
                vdd,
                env,
                GateMismatch::NOMINAL,
                Seconds(range.value() * 1.01),
            )
            .unwrap();
        assert_eq!(reading, VernierReading::OutOfRange);
        assert_eq!(tdc.interval_from(&tech, vdd, env, reading).unwrap(), None);
    }

    #[test]
    fn zero_interval_reads_first_stage() {
        let (tech, tdc, env) = fixture();
        let reading = tdc
            .convert(&tech, Volts(0.6), env, GateMismatch::NOMINAL, Seconds::ZERO)
            .unwrap();
        assert_eq!(reading, VernierReading::Caught { stage: 1 });
    }

    #[test]
    fn subthreshold_resolution_scales_with_cell_delay() {
        let (tech, tdc, env) = fixture();
        let r_200 = tdc.resolution(&tech, Volts(0.2), env).unwrap();
        let r_1200 = tdc.resolution(&tech, Volts(1.2), env).unwrap();
        assert!(r_200.value() > 100.0 * r_1200.value());
    }

    #[test]
    #[should_panic(expected = "skew > 1")]
    fn equal_lines_rejected() {
        let _ = VernierTdc::new(64, 1.0);
    }
}
