//! Golden-signature test for the paper's Table I: the published hex
//! words must round-trip through the quantizer-word codec losslessly,
//! and their decoded structure must agree with what the calibrated
//! model reproduces at the same corners.

use subvt_device::mosfet::Environment;
use subvt_device::technology::Technology;
use subvt_digital::encoder::{EncodeError, QuantizerWord};
use subvt_tdc::table1::{reproduce_table1, PAPER_SIGNATURES, TABLE1_VOLTAGES};

/// The published signatures parsed back into 64-stage quantizer words.
fn paper_words() -> Vec<(&'static str, QuantizerWord)> {
    PAPER_SIGNATURES
        .iter()
        .map(|&(corner, hex)| {
            let word = QuantizerWord::from_table_hex(64, hex)
                .unwrap_or_else(|| panic!("{corner} signature {hex:?} must parse"));
            (corner, word)
        })
        .collect()
}

#[test]
fn signatures_round_trip_byte_identically() {
    for (&(corner, hex), (_, word)) in PAPER_SIGNATURES.iter().zip(paper_words()) {
        assert_eq!(
            word.to_table_hex(),
            hex,
            "{corner} signature must survive parse → format"
        );
    }
}

#[test]
fn signatures_decode_to_the_papers_edge_positions() {
    let words = paper_words();
    // 1.2 V: a clean 7-stage burst from stage 0.
    assert_eq!(words[0].1.encode(), Ok(7), "1.2 V");
    // 1.0 V: 23 stages — the 16-shift sensitivity anchor vs 1.2 V.
    assert_eq!(words[1].1.encode(), Ok(23), "1.0 V");
    assert_eq!(
        words[0].1.encode().unwrap() + 16,
        words[1].1.encode().unwrap()
    );
    // 0.8 V: the burst is offset (the edge from the *previous* Ref_clk
    // cycle); the trailing edge sits at stage 40.
    assert_eq!(words[2].1.encode(), Ok(40), "0.8 V");
    // 0.6 V: latched twice — exactly the failure the paper reports.
    assert_eq!(
        words[3].1.encode(),
        Err(EncodeError::MultipleBursts { bursts: 2 }),
        "0.6 V"
    );
}

#[test]
fn reproduced_rows_match_signature_structure_at_every_corner() {
    let rows = reproduce_table1(&Technology::st_130nm(), Environment::nominal())
        .expect("published voltages are in range");
    let words = paper_words();
    assert_eq!(rows.len(), words.len());
    // A word is "phase-wrapped" when the measurement window exceeded
    // one Ref_clk period: the burst no longer starts at stage 0 (the
    // previous cycle's edge is what got latched) or more than one burst
    // is present. The absolute bit patterns depend on an unpublished
    // sampling phase, but whether each corner wraps is pure physics
    // (window = 64 · cell_delay vs the 14 ns period), so the model
    // must agree with the paper on it corner by corner.
    let wrapped = |w: QuantizerWord| w.bits() & 1 == 0 || w.burst_count() > 1;
    for (row, (corner, paper)) in rows.iter().zip(&words) {
        // Same corner ordering as the published table.
        let vdd = TABLE1_VOLTAGES[words.iter().position(|(c, _)| c == corner).unwrap()];
        assert_eq!(row.vdd, vdd);
        assert_eq!(
            wrapped(row.word),
            wrapped(*paper),
            "{corner}: model {} vs paper {}",
            row.hex(),
            paper.to_table_hex()
        );
    }
    // Above the wrap point the decode must be clean in both; at 0.6 V
    // both must be double-latched and flagged unreliable.
    assert!(
        rows[0].code.is_some() && words[0].1.encode().is_ok(),
        "1.2 V"
    );
    assert!(
        rows[1].code.is_some() && words[1].1.encode().is_ok(),
        "1.0 V"
    );
    assert!(rows[3].bursts > 1 && words[3].1.burst_count() > 1, "0.6 V");
    assert_eq!(rows[3].code, None, "0.6 V must be unreliable");
}
