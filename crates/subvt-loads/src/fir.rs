//! The 9-tap subthreshold FIR filter load (the paper's reference \[4\],
//! Mishra & Al-Hashimi, PATMOS'08), used in Sec. IV to show the
//! controller working on a second, realistic load.
//!
//! The filter is functional — it really filters samples in Q15 fixed
//! point — and carries an electrical profile (gate count, logic depth,
//! switching factor) so the controller can reason about its energy and
//! timing like any other load.

use subvt_device::delay::{GateMismatch, GateTiming, SupplyRangeError};
use subvt_device::energy::CircuitProfile;
use subvt_device::mosfet::Environment;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::{Seconds, Volts};

use crate::load::CircuitLoad;

/// Number of taps.
pub const TAPS: usize = 9;

/// Q15 fixed-point scale.
pub const Q15: i32 = 1 << 15;

/// A 9-tap direct-form FIR filter with Q15 coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    coefficients: [i32; TAPS],
    delay_line: [i32; TAPS],
    profile: CircuitProfile,
    samples_processed: u64,
}

impl FirFilter {
    /// A symmetric 9-tap low-pass filter (Hamming-windowed sinc,
    /// cutoff ≈ 0.2 f_s), quantized to Q15. Coefficients sum to ≈ 1.0.
    pub fn lowpass_9tap() -> FirFilter {
        // Symmetric; midpoint largest.
        let coefficients = [242, 1317, 3849, 6879, 8194, 6879, 3849, 1317, 242];
        FirFilter::with_coefficients(coefficients)
    }

    /// Builds a filter from raw Q15 coefficients.
    pub fn with_coefficients(coefficients: [i32; TAPS]) -> FirFilter {
        // Electrical profile of the PATMOS'08-style implementation:
        // nine 16×16 multipliers and an adder tree, ~2 400 gates,
        // multiplier + 4-level adder tree on the critical path.
        let profile = CircuitProfile {
            name: "fir-9tap".to_owned(),
            gate: GateKind::Nand2,
            gates: 2_400.0,
            activity: 0.15,
            depth: 42.0,
            cap_scale: 2.372_001,
            leak_scale: 1.099_502,
            corner_cal: CircuitProfile::ring_oscillator().corner_cal,
        };
        FirFilter {
            coefficients,
            delay_line: [0; TAPS],
            profile,
            samples_processed: 0,
        }
    }

    /// The coefficient set.
    pub fn coefficients(&self) -> &[i32; TAPS] {
        &self.coefficients
    }

    /// Samples processed since construction or reset.
    pub fn samples_processed(&self) -> u64 {
        self.samples_processed
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.delay_line = [0; TAPS];
    }

    /// Processes one Q15 input sample and returns the filtered output.
    pub fn process(&mut self, x: i32) -> i32 {
        self.delay_line.rotate_right(1);
        self.delay_line[0] = x;
        let acc: i64 = self
            .delay_line
            .iter()
            .zip(&self.coefficients)
            .map(|(&s, &c)| i64::from(s) * i64::from(c))
            .sum();
        self.samples_processed += 1;
        (acc >> 15) as i32
    }

    /// Filters a whole block.
    pub fn filter(&mut self, input: &[i32]) -> Vec<i32> {
        input.iter().map(|&x| self.process(x)).collect()
    }

    /// DC gain of the coefficient set in Q15 (sum of taps).
    pub fn dc_gain_q15(&self) -> i32 {
        self.coefficients.iter().sum()
    }
}

impl CircuitLoad for FirFilter {
    fn name(&self) -> &str {
        "fir-9tap"
    }

    fn profile(&self) -> &CircuitProfile {
        &self.profile
    }

    fn critical_path(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError> {
        let t = GateTiming::new(tech).gate_delay_with(GateKind::Nand2, vdd, env, mismatch, 1.0)?;
        Ok(t * self.profile.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_gain_is_near_unity() {
        let f = FirFilter::lowpass_9tap();
        let gain = f.dc_gain_q15();
        assert!((gain - Q15).abs() < Q15 / 50, "DC gain {gain} vs {Q15}");
    }

    #[test]
    fn impulse_response_replays_coefficients() {
        let mut f = FirFilter::lowpass_9tap();
        let mut input = vec![0i32; TAPS + 2];
        input[0] = Q15; // unit impulse at full scale
        let out = f.filter(&input);
        for (i, &c) in f.coefficients().iter().enumerate() {
            assert_eq!(out[i], c, "tap {i}");
        }
        assert_eq!(out[TAPS], 0);
    }

    #[test]
    fn step_response_settles_to_dc_gain() {
        let mut f = FirFilter::lowpass_9tap();
        let out = f.filter(&[Q15; 20]);
        let settled = out[TAPS + 1];
        assert!(
            (settled - f.dc_gain_q15()).abs() <= TAPS as i32,
            "settled {settled}"
        );
    }

    #[test]
    fn lowpass_attenuates_nyquist() {
        // Alternating ±full-scale (Nyquist tone) must come out tiny.
        let mut f = FirFilter::lowpass_9tap();
        let input: Vec<i32> = (0..64)
            .map(|i| if i % 2 == 0 { Q15 } else { -Q15 })
            .collect();
        let out = f.filter(&input);
        let tail_peak = out[16..].iter().map(|v| v.abs()).max().unwrap();
        assert!(tail_peak < Q15 / 20, "Nyquist leakage {tail_peak}");
    }

    #[test]
    fn linearity() {
        let mut f1 = FirFilter::lowpass_9tap();
        let mut f2 = FirFilter::lowpass_9tap();
        let x: Vec<i32> = (0..32).map(|i| (i * 321) % 4096).collect();
        let y1 = f1.filter(&x);
        let x2: Vec<i32> = x.iter().map(|v| v * 2).collect();
        let y2 = f2.filter(&x2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((b - 2 * a).abs() <= 2, "rounding beyond tolerance");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut f = FirFilter::lowpass_9tap();
        f.filter(&[Q15; 5]);
        f.reset();
        let out = f.process(0);
        assert_eq!(out, 0);
        assert_eq!(f.samples_processed(), 6);
    }

    #[test]
    fn fir_is_slower_than_ring_per_operation() {
        // Deeper pipeline: longer critical path at the same voltage.
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let fir = FirFilter::lowpass_9tap();
        let ring = crate::ring_oscillator::RingOscillator::with_stages(9, 0.1);
        let v = Volts(0.3);
        let cp_fir = fir
            .critical_path(&tech, v, env, GateMismatch::NOMINAL)
            .unwrap();
        let cp_ring = ring
            .critical_path(&tech, v, env, GateMismatch::NOMINAL)
            .unwrap();
        assert!(cp_fir.value() > cp_ring.value());
    }

    #[test]
    fn fir_has_its_own_subthreshold_mep() {
        use subvt_device::mep::find_mep;
        let tech = Technology::st_130nm();
        let fir = FirFilter::lowpass_9tap();
        let mep = find_mep(
            &tech,
            fir.profile(),
            Environment::nominal(),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        assert!(
            mep.vopt.volts() < 0.287,
            "FIR MEP should be subthreshold, got {}",
            mep.vopt
        );
    }
}
