//! The paper's case-study load: a ring oscillator built from NAND
//! gates (its reference \[14\]), which "offers fine control of the
//! switching activity and thus is an ideal platform to study the
//! subthreshold energy and delay characteristic".

use subvt_device::delay::{GateMismatch, GateTiming, SupplyRangeError};
use subvt_device::energy::CircuitProfile;
use subvt_device::mosfet::Environment;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::{Hertz, Seconds, Volts};
use subvt_sim::logic::Logic;
use subvt_sim::netlist::{GateFn, Netlist, SignalId};
use subvt_sim::time::{SimDuration, SimTime};

use crate::load::CircuitLoad;

/// A NAND-gate ring oscillator with switching-activity control.
#[derive(Debug, Clone, PartialEq)]
pub struct RingOscillator {
    stages: usize,
    profile: CircuitProfile,
}

impl RingOscillator {
    /// The paper's calibrated ring oscillator: the energy profile is
    /// pinned to the published Fig. 1 MEP loci, switching factor 0.1.
    pub fn paper_circuit() -> RingOscillator {
        RingOscillator {
            stages: 64,
            profile: CircuitProfile::ring_oscillator(),
        }
    }

    /// A ring with explicit stage count and switching factor (for
    /// activity sweeps; the calibrated corner scales are retained).
    ///
    /// # Panics
    ///
    /// Panics unless `stages` is odd and ≥ 3 (an even ring latches) and
    /// `0 < activity <= 1`.
    pub fn with_stages(stages: usize, activity: f64) -> RingOscillator {
        assert!(
            stages >= 3 && stages % 2 == 1,
            "ring needs an odd stage count ≥ 3"
        );
        assert!(
            activity > 0.0 && activity <= 1.0,
            "switching factor must be in (0, 1]"
        );
        let mut profile = CircuitProfile::ring_oscillator().with_activity(activity);
        profile.gates = stages as f64;
        profile.depth = stages as f64;
        RingOscillator { stages, profile }
    }

    /// Number of NAND stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Oscillation frequency: one period is two traversals of the ring.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn frequency(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Hertz, SupplyRangeError> {
        let period = self.period(tech, vdd, env)?;
        Ok(period.to_frequency())
    }

    /// Oscillation period: `2 × stages × t_nand`.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn period(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        let t = GateTiming::new(tech).gate_delay(GateKind::Nand2, vdd, env)?;
        Ok(t * (2.0 * self.stages as f64))
    }

    /// Builds the ring structurally (enable + initial edge injected)
    /// into a netlist; returns the enable signal and ring nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    pub fn build_netlist(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        netlist: &mut Netlist,
    ) -> Result<(SignalId, Vec<SignalId>), SupplyRangeError> {
        let t = GateTiming::new(tech).gate_delay(GateKind::Nand2, vdd, env)?;
        let delay = SimDuration::from_seconds(t.value());
        let enable = netlist.add_signal("ring_enable");
        let nodes: Vec<SignalId> = (0..self.stages)
            .map(|i| netlist.add_signal(format!("ring_n{i}")))
            .collect();
        for i in 0..self.stages {
            netlist.add_gate(
                GateFn::Nand2,
                &[nodes[i], enable],
                nodes[(i + 1) % self.stages],
                delay,
            );
        }
        // Seed a single circulating edge.
        netlist.drive(nodes[0], Logic::Low, SimTime::ZERO);
        for &node in nodes.iter().skip(1) {
            netlist.drive(node, Logic::High, SimTime::ZERO);
        }
        netlist.drive(enable, Logic::High, SimTime::ZERO);
        Ok((enable, nodes))
    }
}

impl CircuitLoad for RingOscillator {
    fn name(&self) -> &str {
        "nand-ring-oscillator"
    }

    fn profile(&self) -> &CircuitProfile {
        &self.profile
    }

    fn critical_path(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError> {
        let t = GateTiming::new(tech).gate_delay_with(GateKind::Nand2, vdd, env, mismatch, 1.0)?;
        Ok(t * self.profile.depth)
    }

    fn critical_path_with(
        &self,
        eval: &dyn subvt_device::tabulate::DeviceEval,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError> {
        let t = eval.gate_delay(GateKind::Nand2, vdd, env, mismatch, 1.0)?;
        Ok(t * self.profile.depth)
    }

    fn critical_path_lane(
        &self,
        eval: &dyn subvt_device::tabulate::DeviceEval,
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        out: &mut [Seconds],
    ) -> Result<(), SupplyRangeError> {
        // One NAND delay per die through the device lane (the grid
        // hoist happens there), then the same `t × depth` scaling as
        // the scalar path — bit-identical per die.
        eval.gate_delay_lane(GateKind::Nand2, vdd, env, mismatches, 1.0, out)?;
        for t in out.iter_mut() {
            *t = *t * self.profile.depth;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::corner::ProcessCorner;

    fn fixture() -> (Technology, RingOscillator) {
        (Technology::st_130nm(), RingOscillator::paper_circuit())
    }

    #[test]
    fn frequency_rises_with_vdd() {
        let (tech, ring) = fixture();
        let env = Environment::nominal();
        let slow = ring.frequency(&tech, Volts(0.2), env).unwrap();
        let fast = ring.frequency(&tech, Volts(1.2), env).unwrap();
        assert!(fast.value() > 100.0 * slow.value());
    }

    #[test]
    fn period_matches_two_n_gate_delays() {
        let (tech, ring) = fixture();
        let env = Environment::nominal();
        let t_nand = GateTiming::new(&tech)
            .gate_delay(GateKind::Nand2, Volts(0.3), env)
            .unwrap();
        let period = ring.period(&tech, Volts(0.3), env).unwrap();
        assert!((period.value() / t_nand.value() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn structural_ring_oscillates_at_model_frequency() {
        let (tech, _) = fixture();
        let ring = RingOscillator::with_stages(5, 0.1);
        let env = Environment::nominal();
        let vdd = Volts(0.6);
        let expected_period = ring.period(&tech, vdd, env).unwrap();

        let mut nl = Netlist::new();
        let (_, nodes) = ring.build_netlist(&tech, vdd, env, &mut nl).unwrap();
        // Run 20 periods and count rising edges on node 0 by sampling.
        let horizon = SimDuration::from_seconds(expected_period.value() * 20.0);
        let step = SimDuration::from_seconds(expected_period.value() / 50.0);
        let mut transitions = 0u32;
        let mut last = Logic::Unknown;
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + horizon {
            t += step;
            nl.run_until(t, 10_000_000);
            let v = nl.signal(nodes[0]);
            if v != last {
                transitions += 1;
                last = v;
            }
        }
        // 20 periods → ~40 transitions on a given node.
        assert!(
            (35..=45).contains(&transitions),
            "transitions {transitions}"
        );
    }

    #[test]
    fn supply_current_grows_with_voltage() {
        let (tech, ring) = fixture();
        let env = Environment::nominal();
        let low = ring.supply_current(&tech, Volts(0.2), env).unwrap();
        let high = ring.supply_current(&tech, Volts(0.8), env).unwrap();
        assert!(high.value() > low.value());
        assert!(low.value() > 0.0);
    }

    #[test]
    fn max_rate_is_reciprocal_critical_path() {
        let (tech, ring) = fixture();
        let env = Environment::nominal();
        let cp = ring
            .critical_path(&tech, Volts(0.3), env, GateMismatch::NOMINAL)
            .unwrap();
        let rate = ring
            .max_rate(&tech, Volts(0.3), env, GateMismatch::NOMINAL)
            .unwrap();
        assert!((cp.value() * rate.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slow_corner_lowers_max_rate() {
        let (tech, ring) = fixture();
        let v = Volts(0.25);
        let tt = ring
            .max_rate(&tech, v, Environment::nominal(), GateMismatch::NOMINAL)
            .unwrap();
        let ss = ring
            .max_rate(
                &tech,
                v,
                Environment::at_corner(ProcessCorner::Ss),
                GateMismatch::NOMINAL,
            )
            .unwrap();
        assert!(ss.value() < tt.value());
    }

    #[test]
    fn activity_control_changes_dynamic_energy_only() {
        let (tech, _) = fixture();
        let env = Environment::nominal();
        let lazy = RingOscillator::with_stages(63, 0.05);
        let busy = RingOscillator::with_stages(63, 0.5);
        let v = Volts(0.3);
        let e_lazy = lazy.energy_per_op(&tech, v, env).unwrap();
        let e_busy = busy.energy_per_op(&tech, v, env).unwrap();
        assert!((e_busy.dynamic.value() / e_lazy.dynamic.value() - 10.0).abs() < 1e-6);
        assert!((e_busy.leakage.value() - e_lazy.leakage.value()).abs() < 1e-20);
    }

    #[test]
    fn eval_critical_path_matches_direct_path() {
        use subvt_device::tabulate::{AnalyticEval, TabulatedEval, ACCURACY_BUDGET};
        let (tech, ring) = fixture();
        let env = Environment::nominal();
        let mm = GateMismatch {
            nmos_dvth: Volts(0.011),
            pmos_dvth: Volts(-0.007),
        };
        let analytic = AnalyticEval::new(&tech);
        let tabulated = TabulatedEval::new(&tech);
        for v in [Volts(0.231), Volts(0.35), Volts(0.62)] {
            let direct = ring.critical_path(&tech, v, env, mm).unwrap();
            let via_analytic = ring.critical_path_with(&analytic, v, env, mm).unwrap();
            assert_eq!(direct.value(), via_analytic.value());
            let via_table = ring.critical_path_with(&tabulated, v, env, mm).unwrap();
            let rel = (via_table.value() - direct.value()).abs() / direct.value();
            assert!(rel < ACCURACY_BUDGET, "{v:?}: rel err {rel:.2e}");
            // Rates and energies route through the same surfaces.
            let rate = ring.max_rate_with(&tabulated, v, env, mm).unwrap();
            assert!((rate.value() * via_table.value() - 1.0).abs() < 1e-12);
            let e_direct = ring.energy_per_op(&tech, v, env).unwrap();
            let e_table = ring.energy_per_op_with(&tabulated, v, env).unwrap();
            let e_rel = (e_table.total().value() - e_direct.total().value()).abs()
                / e_direct.total().value();
            assert!(e_rel < ACCURACY_BUDGET, "{v:?}: energy rel err {e_rel:.2e}");
        }
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_ring_rejected() {
        let _ = RingOscillator::with_stages(4, 0.1);
    }

    #[test]
    #[should_panic(expected = "switching factor")]
    fn zero_activity_rejected() {
        let _ = RingOscillator::with_stages(5, 0.0);
    }
}
