//! A ripple-carry adder load: the "different digital loads" the paper
//! says it experimented with (Sec. IV: "We have experimented with
//! different digital loads and found that our proposed adaptive
//! controller can capture the variations in a wide range of load
//! scenarios").
//!
//! Functional (it really adds), with an electrical profile whose
//! critical path — the carry chain — scales with the word width, and a
//! structural gate-level build for cross-validation.

use subvt_device::delay::{GateMismatch, GateTiming, SupplyRangeError};
use subvt_device::energy::CircuitProfile;
use subvt_device::mosfet::Environment;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::{Seconds, Volts};
use subvt_sim::logic::Logic;
use subvt_sim::netlist::{GateFn, Netlist, SignalId};
use subvt_sim::time::SimDuration;

use crate::load::CircuitLoad;

/// A `width`-bit ripple-carry adder.
#[derive(Debug, Clone, PartialEq)]
pub struct RippleCarryAdder {
    width: u8,
    profile: CircuitProfile,
    operations: u64,
}

impl RippleCarryAdder {
    /// Creates a `width`-bit adder.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 63`.
    pub fn new(width: u8) -> RippleCarryAdder {
        assert!((1..=63).contains(&width), "width {width} out of range");
        // ~7 NAND-equivalents per full adder; carry chain of 2 gate
        // delays per bit dominates the critical path.
        let profile = CircuitProfile {
            name: format!("rca-{width}"),
            gate: GateKind::Nand2,
            gates: 7.0 * f64::from(width),
            activity: 0.2,
            depth: 2.0 * f64::from(width) + 2.0,
            cap_scale: 2.372_001,
            leak_scale: 1.099_502,
            corner_cal: CircuitProfile::ring_oscillator().corner_cal,
        };
        RippleCarryAdder {
            width,
            profile,
            operations: 0,
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Additions performed.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Adds two operands (masked to the width); returns `(sum, carry)`.
    pub fn add(&mut self, a: u64, b: u64) -> (u64, bool) {
        let mask = (1u64 << self.width) - 1;
        self.operations += 1;
        let full = (a & mask) + (b & mask);
        (full & mask, full > mask)
    }

    /// Builds the adder structurally (XOR/AND/OR full-adder cells) into
    /// a netlist. Returns `(a_bits, b_bits, sum_bits, carry_out)`.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology floor.
    #[allow(clippy::type_complexity)]
    pub fn build_netlist(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        netlist: &mut Netlist,
    ) -> Result<(Vec<SignalId>, Vec<SignalId>, Vec<SignalId>, SignalId), SupplyRangeError> {
        let timing = GateTiming::new(tech);
        let t = timing.gate_delay(GateKind::Nand2, vdd, env)?;
        let d = SimDuration::from_seconds(t.value());

        let a: Vec<SignalId> = (0..self.width)
            .map(|i| netlist.add_signal(format!("a{i}")))
            .collect();
        let b: Vec<SignalId> = (0..self.width)
            .map(|i| netlist.add_signal(format!("b{i}")))
            .collect();
        let mut sum = Vec::with_capacity(usize::from(self.width));
        let mut carry = netlist.add_signal("c_in");
        netlist.drive(carry, Logic::Low, subvt_sim::time::SimTime::ZERO);

        for i in 0..usize::from(self.width) {
            let axb = netlist.add_signal(format!("axb{i}"));
            netlist.add_gate(GateFn::Xor2, &[a[i], b[i]], axb, d);
            let s = netlist.add_signal(format!("s{i}"));
            netlist.add_gate(GateFn::Xor2, &[axb, carry], s, d);
            sum.push(s);
            let and1 = netlist.add_signal(format!("g{i}"));
            netlist.add_gate(GateFn::And2, &[a[i], b[i]], and1, d);
            let and2 = netlist.add_signal(format!("p{i}"));
            netlist.add_gate(GateFn::And2, &[axb, carry], and2, d);
            let c_next = netlist.add_signal(format!("c{}", i + 1));
            netlist.add_gate(GateFn::Or2, &[and1, and2], c_next, d);
            carry = c_next;
        }
        Ok((a, b, sum, carry))
    }
}

impl CircuitLoad for RippleCarryAdder {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn profile(&self) -> &CircuitProfile {
        &self.profile
    }

    fn critical_path(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError> {
        let t = GateTiming::new(tech).gate_delay_with(GateKind::Nand2, vdd, env, mismatch, 1.0)?;
        Ok(t * self.profile.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_sim::time::SimTime;

    #[test]
    fn functional_addition() {
        let mut adder = RippleCarryAdder::new(8);
        assert_eq!(adder.add(100, 55), (155, false));
        assert_eq!(adder.add(200, 100), (44, true), "wraps with carry");
        assert_eq!(adder.add(0xFF, 1), (0, true));
        assert_eq!(adder.operations(), 3);
    }

    #[test]
    fn operands_are_masked() {
        let mut adder = RippleCarryAdder::new(4);
        assert_eq!(adder.add(0xFF, 0), (0xF, false));
    }

    #[test]
    fn critical_path_scales_with_width() {
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let narrow = RippleCarryAdder::new(8);
        let wide = RippleCarryAdder::new(32);
        let v = Volts(0.3);
        let cp8 = narrow
            .critical_path(&tech, v, env, GateMismatch::NOMINAL)
            .unwrap();
        let cp32 = wide
            .critical_path(&tech, v, env, GateMismatch::NOMINAL)
            .unwrap();
        let ratio = cp32.value() / cp8.value();
        assert!((3.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn adder_has_a_subthreshold_mep() {
        use subvt_device::mep::find_mep;
        let tech = Technology::st_130nm();
        let adder = RippleCarryAdder::new(16);
        let mep = find_mep(
            &tech,
            adder.profile(),
            Environment::nominal(),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        assert!(mep.vopt.volts() < 0.287, "MEP {}", mep.vopt);
    }

    #[test]
    fn structural_adder_computes_correct_sums() {
        let tech = Technology::st_130nm();
        let env = Environment::nominal();
        let vdd = Volts(0.8);
        let adder = RippleCarryAdder::new(4);
        let t_gate = GateTiming::new(&tech)
            .gate_delay(GateKind::Nand2, vdd, env)
            .unwrap();

        for (a_val, b_val) in [(3u64, 5u64), (9, 9), (15, 1), (0, 0), (7, 12)] {
            let mut nl = Netlist::new();
            let (a, b, sum, cout) = adder.build_netlist(&tech, vdd, env, &mut nl).unwrap();
            for i in 0..4 {
                nl.drive(a[i], Logic::from_bool((a_val >> i) & 1 == 1), SimTime::ZERO);
                nl.drive(b[i], Logic::from_bool((b_val >> i) & 1 == 1), SimTime::ZERO);
            }
            // Settle: well past the carry chain.
            let settle = SimTime::ZERO + SimDuration::from_seconds(t_gate.value() * 40.0);
            nl.run_until(settle, 1_000_000);
            let mut got = 0u64;
            for (i, &s) in sum.iter().enumerate() {
                if nl.signal(s).is_high() {
                    got |= 1 << i;
                }
            }
            let expect = (a_val + b_val) & 0xF;
            let expect_carry = a_val + b_val > 0xF;
            assert_eq!(got, expect, "{a_val}+{b_val}");
            assert_eq!(
                nl.signal(cout).is_high(),
                expect_carry,
                "{a_val}+{b_val} carry"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        let _ = RippleCarryAdder::new(0);
    }
}
