//! The load abstraction the adaptive controller drives.

use subvt_device::delay::{GateMismatch, SupplyRangeError};
use subvt_device::energy::{energy_per_cycle, CircuitProfile, EnergyBreakdown};
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::DeviceEval;
use subvt_device::technology::Technology;
use subvt_device::units::{Amps, Hertz, Seconds, Volts};

/// A digital circuit that can serve as the controller's load: it has a
/// critical path (hence a maximum operating rate at a given supply) and
/// a per-operation energy.
///
/// `Send + Sync` is a supertrait so `&dyn CircuitLoad` can be shared
/// across `subvt-exec` worker threads: every implementor is an
/// immutable description of a circuit, and Monte-Carlo sweeps score
/// the same load on many dies concurrently.
pub trait CircuitLoad: std::fmt::Debug + Send + Sync {
    /// Human-readable load name.
    fn name(&self) -> &str;

    /// The electrical profile used for energy analysis.
    fn profile(&self) -> &CircuitProfile;

    /// Critical-path delay at the given operating point.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] below the technology's functional
    /// floor.
    fn critical_path(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError>;

    /// Maximum operation rate: `1 / critical_path`.
    ///
    /// # Errors
    ///
    /// As [`CircuitLoad::critical_path`].
    fn max_rate(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Hertz, SupplyRangeError> {
        Ok(self.critical_path(tech, vdd, env, mismatch)?.to_frequency())
    }

    /// Energy breakdown of one operation.
    ///
    /// # Errors
    ///
    /// As [`CircuitLoad::critical_path`].
    fn energy_per_op(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<EnergyBreakdown, SupplyRangeError> {
        energy_per_cycle(tech, self.profile(), vdd, env)
    }

    /// Critical-path delay through a [`DeviceEval`] (analytic or
    /// tabulated surfaces). The default falls back to the direct
    /// analytic path via the evaluator's technology; implementors with
    /// a gate-level critical path should override it to route the gate
    /// delays through `eval`.
    ///
    /// # Errors
    ///
    /// As [`CircuitLoad::critical_path`].
    fn critical_path_with(
        &self,
        eval: &dyn DeviceEval,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Seconds, SupplyRangeError> {
        self.critical_path(eval.technology(), vdd, env, mismatch)
    }

    /// Maximum operation rate through a [`DeviceEval`].
    ///
    /// # Errors
    ///
    /// As [`CircuitLoad::critical_path`].
    fn max_rate_with(
        &self,
        eval: &dyn DeviceEval,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Result<Hertz, SupplyRangeError> {
        Ok(self
            .critical_path_with(eval, vdd, env, mismatch)?
            .to_frequency())
    }

    /// Energy breakdown of one operation through a [`DeviceEval`].
    ///
    /// # Errors
    ///
    /// As [`CircuitLoad::critical_path`].
    fn energy_per_op_with(
        &self,
        eval: &dyn DeviceEval,
        vdd: Volts,
        env: Environment,
    ) -> Result<EnergyBreakdown, SupplyRangeError> {
        eval.energy(self.profile(), vdd, env)
    }

    /// Critical-path delays for a whole lane of per-die mismatches at
    /// one (vdd, env) operating point — the batched-study shape. The
    /// default loops [`CircuitLoad::critical_path_with`], bit-identical
    /// to per-die calls; gate-level implementors should forward to
    /// [`DeviceEval::gate_delay_lane`] so the device model's lane hoist
    /// (one grid resolution per batch) applies.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != mismatches.len()`.
    ///
    /// # Errors
    ///
    /// As [`CircuitLoad::critical_path`].
    fn critical_path_lane(
        &self,
        eval: &dyn DeviceEval,
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        out: &mut [Seconds],
    ) -> Result<(), SupplyRangeError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        for (m, o) in mismatches.iter().zip(out.iter_mut()) {
            *o = self.critical_path_with(eval, vdd, env, *m)?;
        }
        Ok(())
    }

    /// Average supply current while operating continuously at `vdd`:
    /// dynamic charge per cycle over the cycle time, plus leakage.
    ///
    /// # Errors
    ///
    /// As [`CircuitLoad::critical_path`].
    fn supply_current(
        &self,
        tech: &Technology,
        vdd: Volts,
        env: Environment,
    ) -> Result<Amps, SupplyRangeError> {
        let e = self.energy_per_op(tech, vdd, env)?;
        let dynamic_current = if vdd.volts() > 0.0 {
            e.dynamic.value() / vdd.volts() / e.cycle_time.value()
        } else {
            0.0
        };
        Ok(Amps(dynamic_current + e.leak_current.value()))
    }
}
