//! Workload (data-arrival) processes feeding the controller's FIFO.
//!
//! Paper Sec. III: "The input data is buffered at the FIFO and the data
//! rate is used to estimate the processing rate" — the queue length is
//! the controller's only window onto the workload, so the arrival
//! pattern shapes everything downstream.

use subvt_rng::Rng;

/// An arrival process: how many data items arrive in each system cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadPattern {
    /// A constant number of arrivals per cycle.
    Constant {
        /// Items per system cycle.
        per_cycle: u32,
    },
    /// Alternating busy/idle phases.
    Burst {
        /// Items per cycle while busy.
        busy_rate: u32,
        /// Cycles per busy phase.
        busy_cycles: u32,
        /// Cycles per idle phase.
        idle_cycles: u32,
    },
    /// Poisson arrivals with the given mean rate per cycle.
    Poisson {
        /// Mean items per system cycle.
        mean: f64,
    },
    /// An explicit per-cycle schedule, repeated cyclically.
    Schedule(Vec<u32>),
}

impl WorkloadPattern {
    /// Long-run average arrivals per cycle.
    pub fn mean_rate(&self) -> f64 {
        match self {
            WorkloadPattern::Constant { per_cycle } => f64::from(*per_cycle),
            WorkloadPattern::Burst {
                busy_rate,
                busy_cycles,
                idle_cycles,
            } => {
                f64::from(*busy_rate) * f64::from(*busy_cycles)
                    / f64::from(busy_cycles + idle_cycles)
            }
            WorkloadPattern::Poisson { mean } => *mean,
            WorkloadPattern::Schedule(s) => {
                if s.is_empty() {
                    0.0
                } else {
                    s.iter().map(|&x| f64::from(x)).sum::<f64>() / s.len() as f64
                }
            }
        }
    }
}

/// A running arrival generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSource {
    pattern: WorkloadPattern,
    cycle: u64,
    total_arrivals: u64,
}

impl WorkloadSource {
    /// Creates a source from a pattern.
    pub fn new(pattern: WorkloadPattern) -> WorkloadSource {
        WorkloadSource {
            pattern,
            cycle: 0,
            total_arrivals: 0,
        }
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &WorkloadPattern {
        &self.pattern
    }

    /// Cycles generated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total items generated so far.
    pub fn total_arrivals(&self) -> u64 {
        self.total_arrivals
    }

    /// Arrivals for the next system cycle.
    pub fn next_arrivals<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u32 {
        let n = match &self.pattern {
            WorkloadPattern::Constant { per_cycle } => *per_cycle,
            WorkloadPattern::Burst {
                busy_rate,
                busy_cycles,
                idle_cycles,
            } => {
                let period = u64::from(busy_cycles + idle_cycles);
                if self.cycle % period < u64::from(*busy_cycles) {
                    *busy_rate
                } else {
                    0
                }
            }
            WorkloadPattern::Poisson { mean } => sample_poisson(*mean, rng),
            WorkloadPattern::Schedule(s) => {
                if s.is_empty() {
                    0
                } else {
                    s[(self.cycle % s.len() as u64) as usize]
                }
            }
        };
        self.cycle += 1;
        self.total_arrivals += u64::from(n);
        n
    }
}

/// Knuth's Poisson sampler (fine for the small per-cycle means used
/// here).
fn sample_poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u32 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "invalid Poisson mean {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_rng::StdRng;

    #[test]
    fn constant_pattern() {
        let mut src = WorkloadSource::new(WorkloadPattern::Constant { per_cycle: 3 });
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(src.next_arrivals(&mut rng), 3);
        }
        assert_eq!(src.total_arrivals(), 30);
        assert_eq!(src.cycle(), 10);
        assert_eq!(src.pattern().mean_rate(), 3.0);
    }

    #[test]
    fn burst_pattern_alternates() {
        let mut src = WorkloadSource::new(WorkloadPattern::Burst {
            busy_rate: 5,
            busy_cycles: 2,
            idle_cycles: 3,
        });
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u32> = (0..10).map(|_| src.next_arrivals(&mut rng)).collect();
        assert_eq!(seq, vec![5, 5, 0, 0, 0, 5, 5, 0, 0, 0]);
        assert!((src.pattern().mean_rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_mean_converges() {
        let mut src = WorkloadSource::new(WorkloadPattern::Poisson { mean: 2.5 });
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| u64::from(src.next_arrivals(&mut rng))).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_silent() {
        let mut src = WorkloadSource::new(WorkloadPattern::Poisson { mean: 0.0 });
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(src.next_arrivals(&mut rng), 0);
    }

    #[test]
    fn schedule_repeats() {
        let mut src = WorkloadSource::new(WorkloadPattern::Schedule(vec![1, 0, 4]));
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<u32> = (0..7).map(|_| src.next_arrivals(&mut rng)).collect();
        assert_eq!(seq, vec![1, 0, 4, 1, 0, 4, 1]);
        assert!((src.pattern().mean_rate() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_is_silent() {
        let mut src = WorkloadSource::new(WorkloadPattern::Schedule(vec![]));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(src.next_arrivals(&mut rng), 0);
        assert_eq!(src.pattern().mean_rate(), 0.0);
    }
}
