//! # subvt-loads
//!
//! Load circuits for the `subvt` reproduction of *"Variation Resilient
//! Adaptive Controller for Subthreshold Circuits"* (DATE 2009):
//!
//! * [`load`] — the [`CircuitLoad`] abstraction (critical path, energy
//!   per operation, supply current);
//! * [`ring_oscillator`] — the paper's NAND-ring case study with
//!   switching-factor control, calibrated to the published Fig. 1 MEP
//!   loci, plus a structural gate-level build;
//! * [`fir`] — the functional 9-tap Q15 FIR filter the paper also
//!   drives (its reference \[4\]);
//! * [`workload`] — data-arrival processes (constant, burst, Poisson,
//!   scheduled) feeding the controller's FIFO.
//!
//! ## Example
//!
//! ```
//! use subvt_device::mosfet::Environment;
//! use subvt_device::technology::Technology;
//! use subvt_device::units::Volts;
//! use subvt_loads::load::CircuitLoad;
//! use subvt_loads::ring_oscillator::RingOscillator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::st_130nm();
//! let ring = RingOscillator::paper_circuit();
//! let f = ring.frequency(&tech, Volts(0.2), Environment::nominal())?;
//! println!("ring at 200 mV: {:.1} kHz", f.value() / 1e3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adder;
pub mod fir;
pub mod load;
pub mod ring_oscillator;
pub mod workload;

pub use adder::RippleCarryAdder;
pub use fir::{FirFilter, Q15, TAPS};
pub use load::CircuitLoad;
pub use ring_oscillator::RingOscillator;
pub use workload::{WorkloadPattern, WorkloadSource};
