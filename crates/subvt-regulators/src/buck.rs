//! The switched buck converter as a [`SupplyBackend`].
//!
//! This is PR 4's supply model lifted behind the trait: the per-word
//! table is still built by settling the real `subvt-dcdc` transient
//! (closed-form segment solver unless the parameters ask for RK4), so
//! a buck-backed study is bit-identical to the historical
//! switched-supply study. The fault-disturbance figures come from
//! `subvt_dcdc::disturbance`, derived next to the component values.

use subvt_dcdc::converter::{ConverterParams, DcDcConverter};
use subvt_dcdc::disturbance::{comparator_glitch_droop, missed_edge_droop};
use subvt_dcdc::filter::ConstantLoad;
use subvt_device::units::{Joules, Volts};
use subvt_digital::lut::VoltageWord;
use subvt_tdc::sensor::word_voltage;

use crate::{SupplyBackend, WordOperatingPoint, LOAD_IMAGE};

/// Effective gate + control capacitance switched per system cycle by
/// the PWM power stage and its drivers; `vbat² × C_g` per cycle is the
/// converter's regulation overhead (conduction loss is booked
/// separately by the savings experiment's energy account).
const GATE_SWITCHED_CAPACITANCE_FARADS: f64 = 5e-15;

/// Worst-case word-step settle latency of the buck loop (Fig. 6:
/// settling takes < 60 system cycles at every word; the model build
/// itself runs 120 for margin and this figure quotes the same bound).
const BUCK_RESPONSE_CYCLES: u32 = 120;

/// Die-independent table of switched-converter operating points, one
/// per voltage word.
///
/// The controller presents the converter with a fixed electrical image
/// (a 2 µA constant drain — see `controller.rs`), so droop and ripple
/// do not depend on which die is being scored. That makes the table a
/// pure function of the converter parameters: it is built **once,
/// serially**, before the Monte-Carlo fan-out, and workers only read
/// it — switched-supply yields stay bit-identical at any `--jobs`.
///
/// Each word's entry reflects the controller's duty-trim loop: the duty
/// within ±6 LSB of the word whose settled mean lands closest to the
/// ideal `word × 18.75 mV` target (first — most negative — trim wins
/// ties, deterministically).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchedSupplyModel {
    /// Indexed by word; word 0 (shutdown) is all-zero.
    points: Vec<WordOperatingPoint>,
}

impl SwitchedSupplyModel {
    /// Trim range the controller's duty-trim loop explores (±6 LSB).
    const TRIM: i16 = 6;

    /// Builds the per-word table by settling the converter at each
    /// candidate duty. Costs 63 short transients (memoized across the
    /// overlapping trim windows), all with the closed-form segment
    /// solver unless `params` asks for RK4. One converter is reused
    /// across every settle (rewound by `reset_transient` between
    /// duties), so the solver's Φ(h) segment cache is shared by the
    /// whole word×trim batch — bit-identical to fresh converters, as
    /// each Φ entry is a pure function of its segment geometry.
    pub fn build(params: ConverterParams) -> SwitchedSupplyModel {
        let mut converter = DcDcConverter::new(params, Box::new(ConstantLoad(LOAD_IMAGE)));
        let mut by_duty: Vec<Option<WordOperatingPoint>> = vec![None; 64];
        let mut points = vec![WordOperatingPoint::ZERO; 64];
        for word in 1..=63u8 {
            let target = word_voltage(word);
            let mut best: Option<(f64, WordOperatingPoint)> = None;
            for trim in -Self::TRIM..=Self::TRIM {
                let duty = (i16::from(word) + trim).clamp(1, 63) as usize;
                let op = *by_duty[duty]
                    .get_or_insert_with(|| settle_at_duty(&mut converter, duty as u64));
                let err = (op.v_mean.volts() - target.volts()).abs();
                if best.is_none_or(|(e, _)| err < e) {
                    best = Some((err, op));
                }
            }
            points[usize::from(word)] = best.expect("trim window is non-empty").1;
        }
        SwitchedSupplyModel { points }
    }

    /// The operating point delivered for `word`.
    pub fn point(&self, word: VoltageWord) -> WordOperatingPoint {
        self.points[usize::from(word) % 64]
    }

    /// The full per-word table (index = commanded word).
    pub fn into_points(self) -> Vec<WordOperatingPoint> {
        self.points
    }
}

/// Settles the converter at a fixed `duty` under the controller's load
/// image and measures the last eight system cycles. The caller's
/// converter is rewound to its as-constructed state first, so each
/// settle sees exactly what a fresh converter would.
fn settle_at_duty(converter: &mut DcDcConverter, duty: u64) -> WordOperatingPoint {
    converter.reset_transient();
    converter.set_duty(duty);
    // Settling takes < 60 cycles at every word (Fig. 6); 120 leaves
    // margin. Untraced, so the closed-form solver segment-steps this.
    converter.run_system_cycles(120);
    let start = converter.now();
    converter.enable_trace("v_out");
    converter.run_system_cycles(8);
    let end = converter.now();
    let trace = converter.take_trace().expect("tracing was enabled");
    let (lo, hi) = trace.extent(start, end).expect("trace has samples");
    let mean = trace.mean(start, end).expect("trace has samples");
    WordOperatingPoint {
        v_mean: Volts(mean),
        v_min: Volts(lo),
        v_max: Volts(hi),
    }
}

/// The buck converter behind the [`SupplyBackend`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuckBackend {
    params: ConverterParams,
}

impl BuckBackend {
    /// A buck backend over explicit converter parameters.
    pub fn new(params: ConverterParams) -> BuckBackend {
        BuckBackend { params }
    }

    /// The paper's converter (1.2 V battery, 64 MHz clock, 6-bit PWM,
    /// closed-form solver).
    pub fn paper_default() -> BuckBackend {
        BuckBackend::new(ConverterParams::default())
    }
}

impl SupplyBackend for BuckBackend {
    fn name(&self) -> &'static str {
        "buck"
    }

    fn settle_table(&self) -> Vec<WordOperatingPoint> {
        SwitchedSupplyModel::build(self.params).into_points()
    }

    fn response_cycles(&self) -> u32 {
        BUCK_RESPONSE_CYCLES
    }

    fn regulation_energy_per_cycle(&self) -> Joules {
        let vbat = self.params.vbat.volts();
        Joules(vbat * vbat * GATE_SWITCHED_CAPACITANCE_FARADS)
    }

    fn comparator_glitch_droop(&self) -> Volts {
        comparator_glitch_droop(&self.params)
    }

    fn missed_update_droop(&self) -> Volts {
        missed_edge_droop(&self.params, LOAD_IMAGE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegulatorModel;
    use subvt_device::constants::DCDC_LSB;

    #[test]
    fn switched_supply_model_tracks_the_ideal_targets() {
        let model = SwitchedSupplyModel::build(ConverterParams::default());
        for word in [5u8, 11, 19, 32, 47, 63] {
            let op = model.point(word);
            let target = word_voltage(word);
            assert!(
                (op.v_mean.volts() - target.volts()).abs() < DCDC_LSB.volts(),
                "word {word}: mean {} vs target {} V",
                op.v_mean.volts(),
                target.volts()
            );
            assert!(op.v_min.volts() < op.v_mean.volts());
            assert!(op.v_mean.volts() < op.v_max.volts());
            assert!(
                op.ripple().volts() < DCDC_LSB.volts(),
                "word {word}: ripple {} mV",
                op.ripple().millivolts()
            );
        }
        assert_eq!(model.point(0), WordOperatingPoint::ZERO);
    }

    #[test]
    fn buck_backend_table_matches_the_switched_model() {
        // The trait path is the same table the historical switched
        // study used — bit-for-bit, which is what keeps buck yields
        // identical to the committed PR 4 numbers.
        let direct = SwitchedSupplyModel::build(ConverterParams::default());
        let model = RegulatorModel::build(&BuckBackend::paper_default());
        for word in 0..=63u8 {
            assert_eq!(model.point(word), direct.point(word), "word {word}");
        }
        assert_eq!(model.tag(), "buck");
    }

    #[test]
    fn buck_droops_match_the_disturbance_derivations() {
        let params = ConverterParams::default();
        let model = RegulatorModel::build(&BuckBackend::new(params));
        assert_eq!(
            model.comparator_glitch_droop(),
            comparator_glitch_droop(&params)
        );
        assert_eq!(
            model.missed_update_droop(),
            missed_edge_droop(&params, LOAD_IMAGE)
        );
        // One duty LSB of the 1.2 V battery divider: 18.75 mV.
        assert!((model.comparator_glitch_droop().millivolts() - 18.75).abs() < 1e-12);
    }
}
