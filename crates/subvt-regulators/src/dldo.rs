//! Digital LDO with a time-interleaved comparator bank.
//!
//! After "Digital LDO with Time-Interleaved Comparators for Fast
//! Response and Low Ripple": N identical clocked comparators, phase
//! staggered by `1/(N·f_cmp)`, each comparing the output rail against
//! the commanded reference and latching a bang-bang decision into a
//! PMOS strength word. Interleaving multiplies the effective sample
//! rate by N without raising any single comparator's clock, which is
//! what shrinks both the response latency and the quantization ripple.
//!
//! Under the controller's constant 2 µA load image the steady-state
//! behaviour is exactly solvable, so the study never integrates
//! anything: the strength word toggles between the two drive levels
//! bracketing the load (`I_lo = ⌊load/I_q⌋·I_q` and `I_lo + I_q`), and
//! each effective sample moves the rail by one exact capacitor step —
//! up `(I_hi − load)·Ts/C` when the comparator saw the rail below
//! target, down `(load − I_lo)·Ts/C` otherwise. The orbit therefore
//! enters and never leaves `[target − down, target + up)`: those
//! bounds *are* the operating point, and peak-to-peak ripple is
//! exactly one strength LSB's worth of charge, `I_q·Ts/C`. The
//! reference simulation in the tests pins the closed form against a
//! step-by-step bang-bang replay.

use subvt_device::constants::DCDC_LSB;
use subvt_device::units::{Amps, Farads, Hertz, Joules, Volts};
use subvt_tdc::sensor::word_voltage;

use crate::{SupplyBackend, WordOperatingPoint, LOAD_IMAGE, SYSTEM_CYCLE};

/// Energy of one clocked-comparator decision (sense amp + latch).
const COMPARATOR_DECISION_ENERGY_FEMTOS: f64 = 0.4;

/// A time-interleaved digital LDO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitalLdoBackend {
    /// Comparators in the interleaved bank (N).
    pub comparators: u32,
    /// Each comparator's clock; the bank's effective sample rate is
    /// `comparators × comparator_clock`.
    pub comparator_clock: Hertz,
    /// Output decoupling capacitance.
    pub output_cap: Farads,
    /// Drive current of one PMOS strength LSB.
    pub strength_lsb: Amps,
    /// The load the controller presents.
    pub load: Amps,
}

impl DigitalLdoBackend {
    /// The shoot-out configuration: 4 comparators at 2.5 MHz each
    /// (400 kHz per comparator would be far too slow; 2.5 MHz keeps a
    /// single comparator cheap while the bank samples at 10 MHz),
    /// 100 pF of decoupling, 0.15 µA strength LSB — chosen so the
    /// 2 µA load image falls strictly between two drive levels.
    pub fn paper_default() -> DigitalLdoBackend {
        DigitalLdoBackend {
            comparators: 4,
            comparator_clock: Hertz::from_megahertz(2.5),
            output_cap: Farads::from_femtos(100_000.0),
            strength_lsb: Amps::from_nanos(150.0),
            load: LOAD_IMAGE,
        }
    }

    /// The bank's effective sample period `1/(N·f_cmp)`.
    pub fn sample_period_seconds(&self) -> f64 {
        1.0 / (f64::from(self.comparators) * self.comparator_clock.value())
    }

    /// The drive levels bracketing the load: `(I_lo, I_hi)` with
    /// `I_lo ≤ load < I_hi`, both multiples of the strength LSB.
    pub fn load_brackets(&self) -> (Amps, Amps) {
        let lsb = self.strength_lsb.value();
        let lo = (self.load.value() / lsb).floor() * lsb;
        (Amps(lo), Amps(lo + lsb))
    }

    /// Rail rise per sample while the strong bracket drives.
    pub fn up_step(&self) -> Volts {
        let (_, hi) = self.load_brackets();
        let ts = self.sample_period_seconds();
        Volts((hi.value() - self.load.value()) * ts / self.output_cap.value())
    }

    /// Rail fall per sample while the weak bracket drives.
    pub fn down_step(&self) -> Volts {
        let (lo, _) = self.load_brackets();
        let ts = self.sample_period_seconds();
        Volts((self.load.value() - lo.value()) * ts / self.output_cap.value())
    }

    /// The closed-form operating point around `target`: the invariant
    /// interval of the bang-bang orbit, `[target − down, target + up)`.
    fn operating_point(&self, target: Volts) -> WordOperatingPoint {
        let up = self.up_step().volts();
        let down = self.down_step().volts();
        WordOperatingPoint {
            v_mean: Volts(target.volts() + (up - down) / 2.0),
            v_min: Volts(target.volts() - down),
            v_max: Volts(target.volts() + up),
        }
    }
}

impl SupplyBackend for DigitalLdoBackend {
    fn name(&self) -> &'static str {
        "dldo"
    }

    fn settle_table(&self) -> Vec<WordOperatingPoint> {
        let mut points = vec![WordOperatingPoint::ZERO; 64];
        for word in 1..=63u8 {
            points[usize::from(word)] = self.operating_point(word_voltage(word));
        }
        points
    }

    fn response_cycles(&self) -> u32 {
        // Worst-case word step: slew one 18.75 mV supply LSB with the
        // full strength word driving against the load.
        let i_max = 63.0 * self.strength_lsb.value();
        let slew_seconds = self.output_cap.value() * DCDC_LSB.volts() / (i_max - self.load.value());
        (slew_seconds / SYSTEM_CYCLE.value()).ceil().max(1.0) as u32
    }

    fn regulation_energy_per_cycle(&self) -> Joules {
        let decisions_per_cycle =
            f64::from(self.comparators) * self.comparator_clock.value() * SYSTEM_CYCLE.value();
        Joules::from_femtos(decisions_per_cycle * COMPARATOR_DECISION_ENERGY_FEMTOS)
    }

    fn comparator_glitch_droop(&self) -> Volts {
        // A corrupted decision latches the strength word fully open
        // for one sample: the rail discharges at the whole load from
        // the ripple trough.
        let ts = self.sample_period_seconds();
        Volts(self.load.value() * ts / self.output_cap.value() + self.down_step().volts())
    }

    fn missed_update_droop(&self) -> Volts {
        // One lost sample stalls the bank for a full rotation (N
        // samples) worst case, leaving the weak bracket driving.
        Volts(f64::from(self.comparators) * self.down_step().volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegulatorModel;

    /// Step-by-step bang-bang replay: the reference the closed form is
    /// pinned against. Starts on target, lets each effective sample
    /// pick the bracketing drive level by comparing against target,
    /// and records the post-warmup envelope.
    fn reference_sim(ldo: &DigitalLdoBackend, target: f64, samples: usize) -> (f64, f64, f64) {
        let (lo, hi) = ldo.load_brackets();
        let ts = ldo.sample_period_seconds();
        let c = ldo.output_cap.value();
        let mut v = target;
        let (mut v_min, mut v_max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        let warmup = samples / 10;
        let mut counted = 0usize;
        for k in 0..samples {
            let drive = if v < target { hi } else { lo };
            v += (drive.value() - ldo.load.value()) * ts / c;
            if k >= warmup {
                v_min = v_min.min(v);
                v_max = v_max.max(v);
                sum += v;
                counted += 1;
            }
        }
        (v_min, v_max, sum / counted as f64)
    }

    #[test]
    fn closed_form_bounds_contain_the_reference_simulation() {
        // The pinned accuracy test: 20 000 simulated samples at the
        // design word's target must stay inside the closed-form
        // invariant interval, average onto its midpoint, and exercise
        // at least one full ripple excursion.
        let ldo = DigitalLdoBackend::paper_default();
        let target = word_voltage(11).volts();
        let op = ldo.operating_point(word_voltage(11));
        let (v_min, v_max, mean) = reference_sim(&ldo, target, 20_000);
        let eps = 1e-12;
        assert!(
            v_min >= op.v_min.volts() - eps,
            "{v_min} < {}",
            op.v_min.volts()
        );
        assert!(
            v_max <= op.v_max.volts() + eps,
            "{v_max} > {}",
            op.v_max.volts()
        );
        let half_pp = op.ripple().volts() / 2.0;
        assert!(
            (mean - op.v_mean.volts()).abs() <= half_pp,
            "mean {mean} vs closed form {}",
            op.v_mean.volts()
        );
        let pp_obs = v_max - v_min;
        let up = ldo.up_step().volts();
        let down = ldo.down_step().volts();
        assert!(pp_obs >= up.max(down) * 0.99, "pp {pp_obs}");
        assert!(pp_obs <= up + down + eps, "pp {pp_obs}");
    }

    #[test]
    fn ripple_is_exactly_one_strength_lsb_of_charge() {
        let ldo = DigitalLdoBackend::paper_default();
        let op = ldo.operating_point(word_voltage(11));
        let expected =
            ldo.strength_lsb.value() * ldo.sample_period_seconds() / ldo.output_cap.value();
        assert!((op.ripple().volts() - expected).abs() < 1e-15);
        // With the shoot-out numbers: 0.15 µA × 100 ns / 100 pF =
        // 0.15 mV peak-to-peak — two orders under the buck's ripple.
        assert!((op.ripple().millivolts() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn doubling_the_comparator_bank_halves_the_ripple() {
        // The headline claim of time interleaving: ripple and latency
        // scale inversely with N at a fixed per-comparator clock.
        let n4 = DigitalLdoBackend::paper_default();
        let n8 = DigitalLdoBackend {
            comparators: 8,
            ..n4
        };
        let r4 = n4.operating_point(word_voltage(11)).ripple().volts();
        let r8 = n8.operating_point(word_voltage(11)).ripple().volts();
        assert!((r4 / r8 - 2.0).abs() < 1e-12, "ripple ratio {}", r4 / r8);
    }

    #[test]
    fn dldo_figures_are_in_the_designed_regime() {
        let model = RegulatorModel::build(&DigitalLdoBackend::paper_default());
        // Settles within the system cycle that commanded the step.
        assert_eq!(model.response_cycles(), 1);
        // 10 M decisions/s × 0.4 fJ → 4 fJ per 1 µs system cycle.
        assert!((model.regulation_energy_per_cycle().femtos() - 4.0).abs() < 1e-9);
        // Glitch droop ≈ 2.05 mV: an order below the buck's 18.75 mV.
        assert!((model.comparator_glitch_droop().millivolts() - 2.05).abs() < 1e-9);
        assert!((model.missed_update_droop().millivolts() - 0.2).abs() < 1e-9);
    }
}
