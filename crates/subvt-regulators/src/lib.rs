//! Pluggable supply-regulator backends.
//!
//! The yield studies score every die against the supply the controller
//! actually commands, so the supply model is a first-class yield term
//! (PR 4's switched-supply ripple cut adaptive yield 81.4% → 75.8%).
//! This crate promotes that seam into a subsystem: one
//! [`SupplyBackend`] trait describing what a study needs from a
//! regulator, and three implementations —
//!
//! * [`buck::BuckBackend`] — the existing all-digital buck converter
//!   (`subvt-dcdc`), settled word-by-word with the closed-form segment
//!   solver;
//! * [`dldo::DigitalLdoBackend`] — a digital LDO with a bank of N
//!   phase-staggered clocked comparators driving a PMOS strength word
//!   (bang-bang control; ripple and latency are closed-form functions
//!   of the comparator count and clock);
//! * [`dlr::DiscreteTimeLinearBackend`] — a discrete-time linear
//!   regulator with a z-domain PI law whose per-sample update is an
//!   exact affine map (no per-die ODE integration anywhere).
//!
//! A backend is *consulted once, serially*, before any Monte-Carlo
//! fan-out: [`RegulatorModel::build`] snapshots the per-word operating
//! points and the scalar figures (response latency, regulation energy,
//! fault-disturbance magnitudes) into plain data that workers only
//! read. That keeps every backend inside the determinism contract —
//! results are bit-identical at any worker count or batch size because
//! the die-scoring hot path never touches the backend itself.

pub mod buck;
pub mod dldo;
pub mod dlr;

use subvt_device::units::{Amps, Joules, Seconds, Volts};
use subvt_digital::lut::VoltageWord;

pub use buck::{BuckBackend, SwitchedSupplyModel};
pub use dldo::DigitalLdoBackend;
pub use dlr::DiscreteTimeLinearBackend;

/// One system cycle of the paper's controller: 64 fast clocks at
/// 64 MHz, i.e. 1 µs. Regulation-energy figures are quoted per system
/// cycle, and response latencies in whole system cycles.
pub const SYSTEM_CYCLE: Seconds = Seconds(1e-6);

/// The electrical image the controller presents to its regulator: a
/// 2 µA constant drain (see `subvt-core`'s `controller.rs`). Backends
/// derive their droop/ripple tables under this load, which is what
/// makes the tables die-independent.
pub const LOAD_IMAGE: Amps = Amps(2e-6);

/// The settled operating point a regulator delivers for one commanded
/// word: the cycle-mean output plus the ripple extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordOperatingPoint {
    /// Cycle-mean settled output.
    pub v_mean: Volts,
    /// Ripple trough — the worst instantaneous supply the logic sees.
    pub v_min: Volts,
    /// Ripple crest.
    pub v_max: Volts,
}

impl WordOperatingPoint {
    /// The shutdown point (word 0): rail fully discharged.
    pub const ZERO: WordOperatingPoint = WordOperatingPoint {
        v_mean: Volts(0.0),
        v_min: Volts(0.0),
        v_max: Volts(0.0),
    };

    /// Peak-to-peak ripple.
    pub fn ripple(&self) -> Volts {
        Volts(self.v_max.volts() - self.v_min.volts())
    }
}

/// What a Monte-Carlo study needs from a supply regulator.
///
/// Contract (pinned by `tests/batch_equivalence.rs` and the
/// checkpoint suite through [`RegulatorModel`]):
///
/// * every method is a **pure function of the backend's parameters** —
///   no hidden state, no randomness — so the snapshot taken by
///   [`RegulatorModel::build`] is the whole backend as far as a study
///   is concerned;
/// * [`SupplyBackend::settle_table`] returns exactly 64 entries, one
///   per voltage word, with word 0 (shutdown) all-zero and
///   `v_min ≤ v_mean ≤ v_max` elsewhere;
/// * the fault-disturbance figures map the shared fault domains onto
///   this regulator's hardware: a *comparator glitch* is one wrong
///   decision by whatever comparison element the loop has, a *missed
///   update* is one lost control update (PWM edge, comparator sample,
///   PI sample).
pub trait SupplyBackend {
    /// Short stable tag naming the backend (`"buck"`, `"dldo"`,
    /// `"dlr"`). Enters checkpoint fingerprints: two backends with the
    /// same tag must be interchangeable mid-run.
    fn name(&self) -> &'static str;

    /// The 64 per-word operating points (index = commanded word).
    fn settle_table(&self) -> Vec<WordOperatingPoint>;

    /// Worst-case settle latency after a word step, in whole system
    /// cycles.
    fn response_cycles(&self) -> u32;

    /// Regulation overhead (control loop, comparators, gate drive) per
    /// system cycle.
    fn regulation_energy_per_cycle(&self) -> Joules;

    /// Rail droop from one corrupted comparator decision.
    fn comparator_glitch_droop(&self) -> Volts;

    /// Rail droop from one missed control update.
    fn missed_update_droop(&self) -> Volts;
}

/// A backend snapshot: plain data a study's workers can share
/// read-only. Built once, serially, before the Monte-Carlo fan-out.
#[derive(Debug, Clone, PartialEq)]
pub struct RegulatorModel {
    tag: &'static str,
    points: Vec<WordOperatingPoint>,
    response_cycles: u32,
    regulation_energy: Joules,
    glitch_droop: Volts,
    missed_droop: Volts,
}

impl RegulatorModel {
    /// Snapshots `backend` into shareable data.
    ///
    /// # Panics
    ///
    /// Panics if the backend violates the [`SupplyBackend`] table
    /// contract (wrong length, non-zero shutdown word, or a
    /// mis-ordered operating point) — a backend bug, not an input
    /// error.
    pub fn build(backend: &dyn SupplyBackend) -> RegulatorModel {
        let points = backend.settle_table();
        assert_eq!(points.len(), 64, "{}: settle table length", backend.name());
        assert_eq!(
            points[0],
            WordOperatingPoint::ZERO,
            "{}: word 0 must be shutdown",
            backend.name()
        );
        for (word, op) in points.iter().enumerate().skip(1) {
            assert!(
                op.v_min.volts() <= op.v_mean.volts() && op.v_mean.volts() <= op.v_max.volts(),
                "{}: word {word} operating point out of order",
                backend.name()
            );
        }
        RegulatorModel {
            tag: backend.name(),
            points,
            response_cycles: backend.response_cycles(),
            regulation_energy: backend.regulation_energy_per_cycle(),
            glitch_droop: backend.comparator_glitch_droop(),
            missed_droop: backend.missed_update_droop(),
        }
    }

    /// The backend's stable fingerprint tag.
    pub fn tag(&self) -> &'static str {
        self.tag
    }

    /// The operating point delivered for `word`.
    pub fn point(&self, word: VoltageWord) -> WordOperatingPoint {
        self.points[usize::from(word) % 64]
    }

    /// Worst-case settle latency after a word step (system cycles).
    pub fn response_cycles(&self) -> u32 {
        self.response_cycles
    }

    /// Regulation overhead per system cycle.
    pub fn regulation_energy_per_cycle(&self) -> Joules {
        self.regulation_energy
    }

    /// Rail droop from one corrupted comparator decision.
    pub fn comparator_glitch_droop(&self) -> Volts {
        self.glitch_droop
    }

    /// Rail droop from one missed control update.
    pub fn missed_update_droop(&self) -> Volts {
        self.missed_droop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_satisfies_the_table_contract() {
        // RegulatorModel::build asserts the contract internally; this
        // test exists so a violation fails by name, not via a study.
        for backend in [
            &BuckBackend::paper_default() as &dyn SupplyBackend,
            &DigitalLdoBackend::paper_default(),
            &DiscreteTimeLinearBackend::paper_default(),
        ] {
            let model = RegulatorModel::build(backend);
            assert_eq!(model.tag(), backend.name());
            assert_eq!(model.point(0), WordOperatingPoint::ZERO);
            assert!(model.response_cycles() >= 1);
            assert!(model.regulation_energy_per_cycle().value() > 0.0);
            assert!(model.comparator_glitch_droop().volts() > 0.0);
            assert!(model.missed_update_droop().volts() > 0.0);
        }
    }

    #[test]
    fn the_shootout_orderings_hold() {
        // The cross-backend story the shoot-out table tells: the buck
        // ripples hardest, the DLDO's interleaved comparators ripple
        // least; regulation overhead orders the same way. The DLR pays
        // for its slow 1 MHz sampling with the worst glitch droop.
        let buck = RegulatorModel::build(&BuckBackend::paper_default());
        let dldo = RegulatorModel::build(&DigitalLdoBackend::paper_default());
        let dlr = RegulatorModel::build(&DiscreteTimeLinearBackend::paper_default());
        let ripple_at_11 = |m: &RegulatorModel| m.point(11).ripple().volts();
        assert!(ripple_at_11(&buck) > ripple_at_11(&dlr));
        assert!(ripple_at_11(&dlr) > ripple_at_11(&dldo));
        assert!(
            buck.regulation_energy_per_cycle().value() > dlr.regulation_energy_per_cycle().value()
        );
        assert!(
            dlr.regulation_energy_per_cycle().value() > dldo.regulation_energy_per_cycle().value()
        );
        assert!(dlr.comparator_glitch_droop().volts() > buck.comparator_glitch_droop().volts());
        assert!(buck.comparator_glitch_droop().volts() > dldo.comparator_glitch_droop().volts());
        // And the buck is by far the slowest to settle.
        assert!(buck.response_cycles() > dlr.response_cycles());
        assert!(dlr.response_cycles() >= dldo.response_cycles());
    }
}
