//! Discrete-time linear regulator with a z-domain PI law.
//!
//! After "A Model Study of an All-Digital, Discrete-Time and Embedded
//! Linear Regulator": the output rail is sampled at `f_s`, a digital
//! PI filter computes the drive from the error `e = vref − v` and its
//! running sum `x`, and a current DAC applies `i = gm·(kp·e + ki·x)`.
//! With the controller's constant load image the sampled system is the
//! exact affine map
//!
//! ```text
//! [v'] = [1 − a_p   a_i] [v] + [a_p·vref − β]     a_p = (gm·Ts/C)·kp
//! [x']   [  −1       1 ] [x]   [     vref    ]     a_i = (gm·Ts/C)·ki
//!                                                  β   = load·Ts/C
//! ```
//!
//! — one multiply-accumulate per sample, the same closed-form
//! discipline as the PR 4 segment solver: no RK4 anywhere, and
//! nothing for a Monte-Carlo die to integrate. The fixed point is
//! exactly `v* = vref`, `x* = load/(gm·ki)` (a PI loop has zero
//! steady-state error), the eigenvalues of the 2×2 map give the settle
//! latency, and the residual ripple is set by the drive DAC's
//! quantization, `I_q·Ts/C` peak-to-peak about the reference. The
//! tests pin the affine map's convergence and the quantized-DAC limit
//! cycle against step-by-step replays.

use subvt_device::units::{Amps, Farads, Hertz, Joules, Volts};
use subvt_tdc::sensor::word_voltage;

use crate::{SupplyBackend, WordOperatingPoint, LOAD_IMAGE, SYSTEM_CYCLE};

/// Energy of one PI sample: two multiply-accumulates, the rail ADC
/// sample and the DAC update.
const PI_SAMPLE_ENERGY_FEMTOS: f64 = 6.0;

/// Settle criterion: the transient is "settled" once the affine map
/// has contracted the initial error by this factor.
const SETTLE_CONTRACTION: f64 = 0.05;

/// A discrete-time linear (PI) regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteTimeLinearBackend {
    /// Control-loop sample rate `f_s`.
    pub sample_rate: Hertz,
    /// Output decoupling capacitance.
    pub output_cap: Farads,
    /// Transconductance of the drive DAC (amps per volt of PI output).
    pub gm_amps_per_volt: f64,
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Drive DAC quantization step.
    pub drive_lsb: Amps,
    /// The load the controller presents.
    pub load: Amps,
}

impl DiscreteTimeLinearBackend {
    /// The shoot-out configuration: 1 MHz sampling (one PI update per
    /// system cycle), 100 pF of decoupling, 50 µA/V drive, gains
    /// `kp = 1.0`, `ki = 0.16` — a stable complex-conjugate pair with
    /// |λ| ≈ 0.76, settling in ~11 samples.
    pub fn paper_default() -> DiscreteTimeLinearBackend {
        DiscreteTimeLinearBackend {
            sample_rate: Hertz::from_megahertz(1.0),
            output_cap: Farads::from_femtos(100_000.0),
            gm_amps_per_volt: 50e-6,
            kp: 1.0,
            ki: 0.16,
            drive_lsb: Amps::from_nanos(75.0),
            load: LOAD_IMAGE,
        }
    }

    /// The sample period `Ts = 1/f_s`.
    pub fn sample_period_seconds(&self) -> f64 {
        1.0 / self.sample_rate.value()
    }

    /// The loop gain `α = gm·Ts/C` and load discharge `β = load·Ts/C`.
    fn alpha_beta(&self) -> (f64, f64) {
        let ts_over_c = self.sample_period_seconds() / self.output_cap.value();
        (
            self.gm_amps_per_volt * ts_over_c,
            self.load.value() * ts_over_c,
        )
    }

    /// One exact affine sample of the closed loop: `(v, x) → (v', x')`
    /// for reference `vref`. This *is* the regulator — the tests
    /// iterate it; the study only ever reads its fixed point.
    pub fn per_sample(&self, vref: Volts, v: Volts, x: f64) -> (Volts, f64) {
        let (alpha, beta) = self.alpha_beta();
        let e = vref.volts() - v.volts();
        let drive = alpha * (self.kp * e + self.ki * x);
        (Volts(v.volts() + drive - beta), x + e)
    }

    /// The exact fixed point for reference `vref`: `(v*, x*)` with
    /// `v* = vref` (zero steady-state error) and `x* = load/(gm·ki)`.
    pub fn steady_state(&self, vref: Volts) -> (Volts, f64) {
        (vref, self.load.value() / (self.gm_amps_per_volt * self.ki))
    }

    /// Modulus of the dominant eigenvalue of the closed-loop map —
    /// must be < 1 for stability.
    pub fn dominant_pole_modulus(&self) -> f64 {
        let (alpha, _) = self.alpha_beta();
        let (a_p, a_i) = (alpha * self.kp, alpha * self.ki);
        // A = [[1−a_p, a_i], [−1, 1]]
        let trace = 2.0 - a_p;
        let det = (1.0 - a_p) + a_i;
        let disc = trace * trace - 4.0 * det;
        if disc >= 0.0 {
            let root = disc.sqrt();
            ((trace + root) / 2.0)
                .abs()
                .max(((trace - root) / 2.0).abs())
        } else {
            det.sqrt() // complex pair: |λ| = √det
        }
    }

    /// Peak-to-peak quantization ripple: the steady-state drive sits
    /// between two DAC codes, so the rail limit-cycles one drive LSB's
    /// charge wide, centred on the reference.
    fn ripple_pp(&self) -> f64 {
        self.drive_lsb.value() * self.sample_period_seconds() / self.output_cap.value()
    }
}

impl SupplyBackend for DiscreteTimeLinearBackend {
    fn name(&self) -> &'static str {
        "dlr"
    }

    fn settle_table(&self) -> Vec<WordOperatingPoint> {
        let half = self.ripple_pp() / 2.0;
        let mut points = vec![WordOperatingPoint::ZERO; 64];
        for word in 1..=63u8 {
            let vref = word_voltage(word).volts();
            points[usize::from(word)] = WordOperatingPoint {
                v_mean: Volts(vref),
                v_min: Volts(vref - half),
                v_max: Volts(vref + half),
            };
        }
        points
    }

    fn response_cycles(&self) -> u32 {
        let modulus = self.dominant_pole_modulus();
        debug_assert!(modulus < 1.0, "unstable PI gains");
        let samples = (SETTLE_CONTRACTION.ln() / modulus.ln()).ceil().max(1.0);
        let seconds = samples * self.sample_period_seconds();
        (seconds / SYSTEM_CYCLE.value()).ceil().max(1.0) as u32
    }

    fn regulation_energy_per_cycle(&self) -> Joules {
        let samples_per_cycle = self.sample_rate.value() * SYSTEM_CYCLE.value();
        Joules::from_femtos(samples_per_cycle * PI_SAMPLE_ENERGY_FEMTOS)
    }

    fn comparator_glitch_droop(&self) -> Volts {
        // A corrupted error sample zeroes the drive for one full Ts:
        // the rail discharges at the whole load. Slow sampling is the
        // DLR's fault-response weakness — at 1 MHz this is 20 mV,
        // worse than the buck's one-LSB glitch.
        let (_, beta) = self.alpha_beta();
        Volts(beta)
    }

    fn missed_update_droop(&self) -> Volts {
        // A missed sample holds the previous DAC code, which is at
        // most half an LSB away from the load: the rail drifts by that
        // residual for one Ts.
        Volts(self.ripple_pp() / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegulatorModel;

    #[test]
    fn affine_map_converges_to_the_exact_fixed_point() {
        // The pinned accuracy test: iterating the exact per-sample map
        // from a discharged rail must land on the closed-form fixed
        // point to fixed-point-iteration precision.
        let dlr = DiscreteTimeLinearBackend::paper_default();
        let vref = word_voltage(11);
        let (v_star, x_star) = dlr.steady_state(vref);
        let (mut v, mut x) = (Volts(0.0), 0.0);
        for _ in 0..4000 {
            (v, x) = dlr.per_sample(vref, v, x);
        }
        assert!(
            (v.volts() - v_star.volts()).abs() < 1e-9,
            "v settled at {} vs {}",
            v.volts(),
            v_star.volts()
        );
        assert!((x - x_star).abs() < 1e-9, "x settled at {x} vs {x_star}");
    }

    #[test]
    fn the_paper_gains_are_stable_and_fast() {
        let dlr = DiscreteTimeLinearBackend::paper_default();
        let modulus = dlr.dominant_pole_modulus();
        // Complex pair at |λ| = √0.58 ≈ 0.7616.
        assert!((modulus - 0.58f64.sqrt()).abs() < 1e-12);
        assert!(modulus < 1.0);
        assert_eq!(dlr.response_cycles(), 11);
    }

    #[test]
    fn settle_latency_matches_the_iterated_map() {
        // The eigenvalue-derived latency must agree with what the map
        // actually does: after `response_cycles` worth of samples from
        // a one-LSB step, the residual error is within 5% of the step
        // (plus slack for the complex pair's phase).
        let dlr = DiscreteTimeLinearBackend::paper_default();
        let vref = word_voltage(12);
        // Start settled at word 11's reference, then step to word 12.
        let (mut v, mut x) = (word_voltage(11), dlr.steady_state(word_voltage(11)).1);
        let step = (vref.volts() - v.volts()).abs();
        let samples = u64::from(dlr.response_cycles())
            * (SYSTEM_CYCLE.value() * dlr.sample_rate.value()) as u64;
        for _ in 0..samples {
            (v, x) = dlr.per_sample(vref, v, x);
        }
        let residual = (v.volts() - vref.volts()).abs();
        // |λ|^11 ≈ 0.05 bounds the state-space contraction; the
        // complex pair's phase can leave up to ~2× that in the v
        // component alone, so the budget is 15% at the quoted latency
        // and 5% one latency later.
        assert!(
            residual <= step * 0.15,
            "residual {residual} after {samples} samples (step {step})"
        );
        for _ in 0..samples {
            (v, x) = dlr.per_sample(vref, v, x);
        }
        let residual = (v.volts() - vref.volts()).abs();
        assert!(
            residual <= step * 0.05,
            "residual {residual} after {} samples (step {step})",
            2 * samples
        );
    }

    #[test]
    fn quantized_dac_limit_cycle_stays_inside_the_ripple_budget() {
        // The second reference replay: the real loop drives through an
        // I_q-quantized DAC. Its limit cycle must stay within the
        // closed-form ripple band the settle table promises (with a 2×
        // envelope for the limit cycle's overshoot), centred on vref.
        let dlr = DiscreteTimeLinearBackend::paper_default();
        let vref = word_voltage(11);
        let ts_over_c = dlr.sample_period_seconds() / dlr.output_cap.value();
        let beta = dlr.load.value() * ts_over_c;
        let lsb_v = dlr.drive_lsb.value() * ts_over_c;
        let (mut v, mut x) = (
            vref.volts(),
            dlr.load.value() / (dlr.gm_amps_per_volt * dlr.ki),
        );
        let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        let (total, warmup) = (20_000, 2_000);
        for k in 0..total {
            let e = vref.volts() - v;
            // Quantize the commanded drive to whole DAC codes (same
            // pre-update x as the exact map).
            let codes =
                (dlr.gm_amps_per_volt * (dlr.kp * e + dlr.ki * x) / dlr.drive_lsb.value()).round();
            v += codes * lsb_v - beta;
            x += e;
            if k >= warmup {
                lo = lo.min(v);
                hi = hi.max(v);
                sum += v;
            }
        }
        let mean = sum / f64::from(total - warmup);
        let pp_budget = lsb_v;
        assert!(hi - lo <= 2.0 * pp_budget + 1e-12, "pp {}", hi - lo);
        assert!(
            hi - lo >= pp_budget * 0.25,
            "limit cycle vanished: {}",
            hi - lo
        );
        assert!(
            (mean - vref.volts()).abs() <= pp_budget / 2.0,
            "mean {mean} vs vref {}",
            vref.volts()
        );
    }

    #[test]
    fn dlr_figures_are_in_the_designed_regime() {
        let model = RegulatorModel::build(&DiscreteTimeLinearBackend::paper_default());
        let op = model.point(11);
        // 0.075 µA × 1 µs / 100 pF = 0.75 mV peak-to-peak about vref.
        assert!((op.ripple().millivolts() - 0.75).abs() < 1e-9);
        assert_eq!(op.v_mean, word_voltage(11));
        // One 6 fJ PI sample per system cycle.
        assert!((model.regulation_energy_per_cycle().femtos() - 6.0).abs() < 1e-9);
        // The fault-response weakness: 20 mV per glitched sample.
        assert!((model.comparator_glitch_droop().millivolts() - 20.0).abs() < 1e-9);
        assert!((model.missed_update_droop().millivolts() - 0.375).abs() < 1e-9);
    }
}
