//! The input FIFO whose queue length drives the rate controller.
//!
//! Paper Sec. III: "The queue length is the difference between the
//! write pointer and the read pointer of the FIFO. If the processing
//! rate is faster than the arrival of data, the queue length diminishes
//! rapidly … If the data approaches faster than it can process, it
//! results in loss of data."

use std::collections::VecDeque;
use std::fmt;

/// A bounded FIFO with hardware-style pointers and loss accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fifo<T> {
    buffer: VecDeque<T>,
    capacity: usize,
    write_pointer: u64,
    read_pointer: u64,
    dropped: u64,
    peak_occupancy: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Fifo<T> {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            write_pointer: 0,
            read_pointer: 0,
            dropped: 0,
            peak_occupancy: 0,
        }
    }

    /// Maximum occupancy.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue length (write pointer − read pointer).
    pub fn queue_length(&self) -> usize {
        self.buffer.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// True when at capacity (the next push drops).
    pub fn is_full(&self) -> bool {
        self.buffer.len() == self.capacity
    }

    /// Queue length as a fraction of capacity (0..=1).
    pub fn occupancy(&self) -> f64 {
        self.queue_length() as f64 / self.capacity as f64
    }

    /// Total items accepted so far (the hardware write pointer).
    pub fn write_pointer(&self) -> u64 {
        self.write_pointer
    }

    /// Total items consumed so far (the hardware read pointer).
    pub fn read_pointer(&self) -> u64 {
        self.read_pointer
    }

    /// Items lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Highest queue length observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Offers an item. Returns `true` if accepted, `false` if the FIFO
    /// was full and the item was dropped (counted in [`Fifo::dropped`]).
    pub fn push(&mut self, item: T) -> bool {
        if self.is_full() {
            self.dropped += 1;
            return false;
        }
        self.buffer.push_back(item);
        self.write_pointer += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.buffer.len());
        true
    }

    /// Consumes the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.buffer.pop_front();
        if item.is_some() {
            self.read_pointer += 1;
        }
        item
    }

    /// Peeks at the oldest item without consuming it.
    pub fn front(&self) -> Option<&T> {
        self.buffer.front()
    }

    /// Drops all queued items (does not reset statistics).
    pub fn clear(&mut self) {
        let n = self.buffer.len() as u64;
        self.buffer.clear();
        self.read_pointer += n;
    }
}

impl<T> fmt::Display for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fifo {}/{} (wr {}, rd {}, dropped {})",
            self.queue_length(),
            self.capacity,
            self.write_pointer,
            self.read_pointer,
            self.dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_length_is_pointer_difference() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            assert!(f.push(i));
        }
        f.pop();
        f.pop();
        assert_eq!(f.write_pointer(), 5);
        assert_eq!(f.read_pointer(), 2);
        assert_eq!(f.queue_length(), 3);
        assert_eq!(
            f.queue_length() as u64,
            f.write_pointer() - f.read_pointer()
        );
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut f = Fifo::new(2);
        assert!(f.push('a'));
        assert!(f.push('b'));
        assert!(!f.push('c'));
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.queue_length(), 2);
        assert_eq!(f.pop(), Some('a'));
        assert!(f.push('d'));
        assert_eq!(f.dropped(), 1);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i);
        }
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn occupancy_and_peak() {
        let mut f = Fifo::new(10);
        for i in 0..7 {
            f.push(i);
        }
        assert!((f.occupancy() - 0.7).abs() < 1e-12);
        for _ in 0..7 {
            f.pop();
        }
        assert_eq!(f.occupancy(), 0.0);
        assert_eq!(f.peak_occupancy(), 7);
    }

    #[test]
    fn front_peeks_without_consuming() {
        let mut f = Fifo::new(2);
        f.push(42);
        assert_eq!(f.front(), Some(&42));
        assert_eq!(f.queue_length(), 1);
    }

    #[test]
    fn clear_advances_read_pointer() {
        let mut f = Fifo::new(4);
        for i in 0..3 {
            f.push(i);
        }
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.read_pointer(), 3);
    }

    #[test]
    fn display_summarizes_state() {
        let mut f = Fifo::new(2);
        f.push(1);
        assert_eq!(format!("{f}"), "fifo 1/2 (wr 1, rd 0, dropped 0)");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }
}
