//! Clocked registers with load enable.

use subvt_sim::logic::Bus;

/// A width-limited register with load enable — the "6-bit register …
/// used to store the value generated from the rate controller" of
//  the paper's DC-DC converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Register {
    value: Bus,
}

impl Register {
    /// Creates a `width`-bit register initialized to zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u8) -> Register {
        Register {
            value: Bus::zero(width),
        }
    }

    /// Current contents.
    pub fn value(&self) -> u64 {
        self.value.value()
    }

    /// Register width in bits.
    pub fn width(&self) -> u8 {
        self.value.width()
    }

    /// Applies a clock edge: loads `data` when `enable` is true.
    /// Returns the (possibly new) contents.
    pub fn clock(&mut self, enable: bool, data: u64) -> u64 {
        if enable {
            self.value = Bus::new(self.value.width(), data);
        }
        self.value.value()
    }

    /// The contents as a [`Bus`].
    pub fn to_bus(self) -> Bus {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_only_when_enabled() {
        let mut r = Register::new(6);
        assert_eq!(r.clock(false, 42), 0);
        assert_eq!(r.clock(true, 42), 42);
        assert_eq!(r.clock(false, 13), 42);
        assert_eq!(r.value(), 42);
    }

    #[test]
    fn masks_to_width() {
        let mut r = Register::new(6);
        r.clock(true, 0xFF);
        assert_eq!(r.value(), 63);
        assert_eq!(r.width(), 6);
        assert_eq!(r.to_bus().value(), 63);
    }
}
