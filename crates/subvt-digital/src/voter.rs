//! Redundancy voting for noisy sensor readings.
//!
//! Subthreshold flip-flops are metastability-prone (paper Sec. II-A),
//! so a production controller reads the TDC several times and votes.
//! This module provides majority voting over logic levels and median
//! voting over codes — the two schemes `subvt-core` can wrap around the
//! sensor.

use subvt_sim::logic::Logic;

/// Majority vote over logic levels; `Unknown` inputs abstain.
///
/// Returns `Unknown` on a tie or when everything abstained.
pub fn majority(levels: &[Logic]) -> Logic {
    let mut high = 0i32;
    let mut low = 0i32;
    for &l in levels {
        match l {
            Logic::High => high += 1,
            Logic::Low => low += 1,
            Logic::Unknown => {}
        }
    }
    match high.cmp(&low) {
        std::cmp::Ordering::Greater => Logic::High,
        std::cmp::Ordering::Less => Logic::Low,
        std::cmp::Ordering::Equal => Logic::Unknown,
    }
}

/// Median vote over sensor codes (robust to a minority of corrupted
/// readings). Returns `None` for an empty slice.
pub fn median_code(codes: &[u32]) -> Option<u32> {
    if codes.is_empty() {
        return None;
    }
    let mut sorted = codes.to_vec();
    sorted.sort_unstable();
    Some(sorted[sorted.len() / 2])
}

/// A repeated-measurement voter: collects up to `window` samples and
/// reports the median once full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MedianVoter {
    window: usize,
    samples: Vec<u32>,
}

impl MedianVoter {
    /// Creates a voter over `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> MedianVoter {
        assert!(window > 0, "voting window must be positive");
        MedianVoter {
            window,
            samples: Vec::with_capacity(window),
        }
    }

    /// Feeds one sample; returns the voted code when the window fills
    /// (and resets for the next round).
    pub fn feed(&mut self, code: u32) -> Option<u32> {
        self.samples.push(code);
        if self.samples.len() == self.window {
            let result = median_code(&self.samples);
            self.samples.clear();
            result
        } else {
            None
        }
    }

    /// Samples collected in the current round.
    pub fn pending(&self) -> usize {
        self.samples.len()
    }

    /// Discards the current round.
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_basic() {
        use Logic::*;
        assert_eq!(majority(&[High, High, Low]), High);
        assert_eq!(majority(&[Low, Low, High]), Low);
        assert_eq!(majority(&[High, Low]), Unknown);
        assert_eq!(majority(&[]), Unknown);
    }

    #[test]
    fn unknowns_abstain() {
        use Logic::*;
        assert_eq!(majority(&[High, Unknown, Unknown]), High);
        assert_eq!(majority(&[Unknown, Unknown]), Unknown);
        assert_eq!(majority(&[High, Low, Unknown, High]), High);
    }

    #[test]
    fn median_rejects_outliers() {
        assert_eq!(median_code(&[31, 32, 63]), Some(32));
        assert_eq!(median_code(&[0, 31, 32]), Some(31));
        assert_eq!(median_code(&[40]), Some(40));
        assert_eq!(median_code(&[]), None);
    }

    #[test]
    fn voter_fires_every_window() {
        let mut v = MedianVoter::new(3);
        assert_eq!(v.feed(30), None);
        assert_eq!(v.pending(), 1);
        assert_eq!(v.feed(99), None);
        assert_eq!(v.feed(31), Some(31), "outlier 99 outvoted");
        assert_eq!(v.pending(), 0);
        // Next round starts fresh.
        assert_eq!(v.feed(10), None);
        v.reset();
        assert_eq!(v.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "voting window")]
    fn zero_window_rejected() {
        let _ = MedianVoter::new(0);
    }
}
