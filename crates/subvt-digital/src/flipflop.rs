//! Flip-flops: the D flip-flops of the TDC quantizer and the toggle
//! flip-flop that generates the PWM output (paper Fig. 5).

use subvt_sim::logic::Logic;

/// A positive-edge D flip-flop with asynchronous set/clear, modelled at
/// the clock-call level: each call to [`DFlipFlop::clock`] is one
/// rising edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DFlipFlop {
    q: Logic,
}

impl DFlipFlop {
    /// Creates a flip-flop with an unknown initial state (as silicon
    /// powers up).
    pub fn new() -> DFlipFlop {
        DFlipFlop { q: Logic::Unknown }
    }

    /// Current output.
    pub fn q(&self) -> Logic {
        self.q
    }

    /// Complementary output.
    pub fn q_bar(&self) -> Logic {
        !self.q
    }

    /// Applies a rising clock edge, capturing `d`. Returns the new Q.
    pub fn clock(&mut self, d: Logic) -> Logic {
        self.q = d;
        self.q
    }

    /// Asynchronous set (the `SET` pin in the paper's figures).
    pub fn set(&mut self) {
        self.q = Logic::High;
    }

    /// Asynchronous clear (the `CLR` pin in the paper's figures).
    pub fn clear(&mut self) {
        self.q = Logic::Low;
    }
}

/// A toggle flip-flop: flips its output on every enabled clock edge.
///
/// The paper uses one to generate the PWM output: "at terminal count it
/// triggers the toggle flip-flop to drive the PWM signal high".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleFlipFlop {
    q: Logic,
}

impl ToggleFlipFlop {
    /// Creates a toggle flip-flop initialized low.
    pub fn new() -> ToggleFlipFlop {
        ToggleFlipFlop { q: Logic::Low }
    }

    /// Current output.
    pub fn q(&self) -> Logic {
        self.q
    }

    /// Applies a clock edge with toggle-enable `t`. Returns the new Q.
    ///
    /// An `Unknown` enable leaves the state unchanged (conservative).
    pub fn clock(&mut self, t: Logic) -> Logic {
        if t.is_high() {
            self.q = !self.q;
        }
        self.q
    }

    /// Forces the output low.
    pub fn clear(&mut self) {
        self.q = Logic::Low;
    }
}

impl Default for ToggleFlipFlop {
    fn default() -> Self {
        ToggleFlipFlop::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dff_captures_on_clock() {
        let mut ff = DFlipFlop::new();
        assert_eq!(ff.q(), Logic::Unknown);
        assert_eq!(ff.clock(Logic::High), Logic::High);
        assert_eq!(ff.q(), Logic::High);
        assert_eq!(ff.q_bar(), Logic::Low);
        ff.clock(Logic::Low);
        assert_eq!(ff.q(), Logic::Low);
    }

    #[test]
    fn dff_async_pins() {
        let mut ff = DFlipFlop::new();
        ff.set();
        assert_eq!(ff.q(), Logic::High);
        ff.clear();
        assert_eq!(ff.q(), Logic::Low);
    }

    #[test]
    fn dff_propagates_unknown() {
        let mut ff = DFlipFlop::new();
        ff.clock(Logic::Unknown);
        assert_eq!(ff.q(), Logic::Unknown);
        assert_eq!(ff.q_bar(), Logic::Unknown);
    }

    #[test]
    fn toggle_flips_when_enabled() {
        let mut tff = ToggleFlipFlop::new();
        assert_eq!(tff.q(), Logic::Low);
        assert_eq!(tff.clock(Logic::High), Logic::High);
        assert_eq!(tff.clock(Logic::High), Logic::Low);
        assert_eq!(tff.clock(Logic::Low), Logic::Low);
        assert_eq!(tff.clock(Logic::Unknown), Logic::Low);
        tff.clock(Logic::High);
        tff.clear();
        assert_eq!(tff.q(), Logic::Low);
    }
}
