//! Pulse-width-modulation generator.
//!
//! Paper Sec. III: a 6-bit register holds the data value `N`; the
//! up/down counter free-runs at the 64 MHz clock; the PWM output is
//! high for `N` of every 64 ticks ("duty ratio of N/2⁶=64"), so one
//! PWM period is the 1 MHz system cycle. Guard bounds keep `N` away
//! from the 0/64 ends to avoid "the unwanted switching of all
//! transistors occurring at once".

use std::fmt;

use subvt_sim::logic::Logic;

/// The PWM generator: a free-running modulo-2^width counter compared
/// against a duty register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwmGenerator {
    width: u8,
    counter: u64,
    duty: u64,
    guard_low: u64,
    guard_high: u64,
}

impl PwmGenerator {
    /// Creates a generator with a `width`-bit counter (the paper's is
    /// 6-bit) and guard bounds one LSB inside each end.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 16.
    pub fn new(width: u8) -> PwmGenerator {
        assert!((1..=16).contains(&width), "width {width} out of range");
        let levels = 1u64 << width;
        PwmGenerator {
            width,
            counter: 0,
            duty: 0,
            guard_low: 1,
            guard_high: levels - 1,
        }
    }

    /// Number of counter levels (2^width; the paper's 64).
    pub fn levels(&self) -> u64 {
        1 << self.width
    }

    /// Current duty value `N`.
    pub fn duty(&self) -> u64 {
        self.duty
    }

    /// Current duty ratio `N / 2^width`.
    pub fn duty_ratio(&self) -> f64 {
        self.duty as f64 / self.levels() as f64
    }

    /// Loads a new duty value, clamped into the guard band.
    pub fn load_duty(&mut self, duty: u64) {
        self.duty = duty.clamp(self.guard_low, self.guard_high);
    }

    /// Loads a duty value of zero explicitly (converter off), bypassing
    /// the lower guard.
    pub fn shutdown(&mut self) {
        self.duty = 0;
    }

    /// Counter phase within the current PWM period.
    pub fn phase(&self) -> u64 {
        self.counter
    }

    /// Output level for the *current* tick, then advances the counter.
    /// Returns `(level, terminal_count)` where `terminal_count` is true
    /// on the last tick of a period.
    pub fn tick(&mut self) -> (Logic, bool) {
        let level = Logic::from_bool(self.counter < self.duty);
        let terminal = self.counter == self.levels() - 1;
        self.counter = if terminal { 0 } else { self.counter + 1 };
        (level, terminal)
    }

    /// Resets the counter phase.
    pub fn reset(&mut self) {
        self.counter = 0;
    }
}

impl fmt::Display for PwmGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pwm {}/{} duty", self.duty, self.levels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_ratio_n_over_64() {
        let mut pwm = PwmGenerator::new(6);
        pwm.load_duty(19);
        assert_eq!(pwm.levels(), 64);
        assert!((pwm.duty_ratio() - 19.0 / 64.0).abs() < 1e-12);
        let mut highs = 0;
        let mut terminals = 0;
        for _ in 0..640 {
            let (level, tc) = pwm.tick();
            if level.is_high() {
                highs += 1;
            }
            if tc {
                terminals += 1;
            }
        }
        assert_eq!(highs, 190, "19 high ticks per 64-tick period");
        assert_eq!(terminals, 10, "one terminal count per period");
    }

    #[test]
    fn high_ticks_lead_each_period() {
        let mut pwm = PwmGenerator::new(6);
        pwm.load_duty(3);
        let levels: Vec<bool> = (0..64).map(|_| pwm.tick().0.is_high()).collect();
        assert!(levels[0] && levels[1] && levels[2]);
        assert!(levels[3..].iter().all(|&l| !l));
    }

    #[test]
    fn guard_bounds_clamp_duty() {
        let mut pwm = PwmGenerator::new(6);
        pwm.load_duty(0);
        assert_eq!(pwm.duty(), 1, "lower guard");
        pwm.load_duty(64);
        assert_eq!(pwm.duty(), 63, "upper guard");
        pwm.load_duty(1000);
        assert_eq!(pwm.duty(), 63);
    }

    #[test]
    fn shutdown_bypasses_guard() {
        let mut pwm = PwmGenerator::new(6);
        pwm.shutdown();
        assert_eq!(pwm.duty(), 0);
        let all_low = (0..64).all(|_| pwm.tick().0.is_low());
        assert!(all_low);
    }

    #[test]
    fn reset_restarts_the_period() {
        let mut pwm = PwmGenerator::new(6);
        pwm.load_duty(10);
        for _ in 0..30 {
            pwm.tick();
        }
        assert_eq!(pwm.phase(), 30);
        pwm.reset();
        assert_eq!(pwm.phase(), 0);
        assert!(pwm.tick().0.is_high());
    }

    #[test]
    fn display_shows_duty() {
        let mut pwm = PwmGenerator::new(6);
        pwm.load_duty(19);
        assert_eq!(format!("{pwm}"), "pwm 19/64 duty");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_wide_counter_rejected() {
        let _ = PwmGenerator::new(20);
    }
}
