//! Up/down counter with terminal count — the heart of the PWM control
//! (paper Sec. III: "a new value at the up-down counter register is
//! updated in each duty cycle … at terminal count it triggers the
//! toggle flip-flop").

use std::fmt;

use subvt_sim::logic::Bus;

/// Count direction command for an [`UpDownCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CountDirection {
    /// Increment.
    Up,
    /// Decrement.
    Down,
    /// Keep the current value.
    #[default]
    Hold,
}

/// Wrapping behaviour of a counter at its range limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowMode {
    /// Wrap around (a free-running hardware counter).
    #[default]
    Wrap,
    /// Saturate at the limits (a register that must not glitch through
    /// zero — the paper's "simple upper bound and lower bound … to
    /// avoid the unwanted switching of all transistors at once").
    Saturate,
}

/// A width-limited up/down counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpDownCounter {
    value: Bus,
    mode: OverflowMode,
}

impl UpDownCounter {
    /// Creates a counter of `width` bits starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u8, mode: OverflowMode) -> UpDownCounter {
        UpDownCounter {
            value: Bus::zero(width),
            mode,
        }
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value.value()
    }

    /// Counter width in bits.
    pub fn width(&self) -> u8 {
        self.value.width()
    }

    /// Loads a value (masked to the counter width).
    pub fn load(&mut self, value: u64) {
        self.value = Bus::new(self.value.width(), value);
    }

    /// True when the counter sits at its maximum value.
    pub fn at_terminal(&self) -> bool {
        self.value.is_terminal()
    }

    /// True when the counter sits at zero.
    pub fn at_zero(&self) -> bool {
        self.value.value() == 0
    }

    /// Applies one clock with a direction command. Returns `true` when
    /// the step produced a terminal-count event (wrapped past the top
    /// or hit the top, depending on the overflow mode).
    pub fn clock(&mut self, dir: CountDirection) -> bool {
        match dir {
            CountDirection::Hold => false,
            CountDirection::Up => {
                if self.at_terminal() {
                    match self.mode {
                        OverflowMode::Wrap => {
                            self.value = self.value.wrapping_inc();
                            true
                        }
                        OverflowMode::Saturate => true,
                    }
                } else {
                    self.value = self.value.wrapping_inc();
                    self.at_terminal()
                }
            }
            CountDirection::Down => {
                if self.at_zero() {
                    if self.mode == OverflowMode::Wrap {
                        self.value = self.value.wrapping_dec();
                    }
                } else {
                    self.value = self.value.wrapping_dec();
                }
                false
            }
        }
    }
}

impl fmt::Display for UpDownCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value.value(), (1u64 << self.width()) - 1)
    }
}

/// A free-running modulo-N tick counter that reports wrap events —
/// used to derive the 1 MHz system cycle from the 64 MHz clock
/// (64 MHz / 2⁶, paper Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDivider {
    period: u64,
    count: u64,
}

impl ClockDivider {
    /// Creates a divider that fires every `period` input ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> ClockDivider {
        assert!(period > 0, "divider period must be positive");
        ClockDivider { period, count: 0 }
    }

    /// Division ratio.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Ticks in the current cycle so far.
    pub fn phase(&self) -> u64 {
        self.count
    }

    /// Advances one input tick; returns `true` on the tick that
    /// completes a cycle.
    pub fn tick(&mut self) -> bool {
        self.count += 1;
        if self.count == self.period {
            self.count = 0;
            true
        } else {
            false
        }
    }

    /// Resets the phase.
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_bit_counter_counts_to_63_and_wraps() {
        let mut c = UpDownCounter::new(6, OverflowMode::Wrap);
        let mut terminal_events = 0;
        for _ in 0..64 {
            if c.clock(CountDirection::Up) {
                terminal_events += 1;
            }
        }
        // Reached 63 at the 63rd step (terminal event), then wrapped.
        assert_eq!(terminal_events, 2, "terminal at 63 and wrap past it");
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn hold_does_nothing() {
        let mut c = UpDownCounter::new(6, OverflowMode::Wrap);
        c.load(17);
        assert!(!c.clock(CountDirection::Hold));
        assert_eq!(c.value(), 17);
    }

    #[test]
    fn down_counts_and_wraps() {
        let mut c = UpDownCounter::new(4, OverflowMode::Wrap);
        c.clock(CountDirection::Down);
        assert_eq!(c.value(), 15);
    }

    #[test]
    fn saturating_counter_pins_at_limits() {
        let mut c = UpDownCounter::new(4, OverflowMode::Saturate);
        c.load(15);
        assert!(c.clock(CountDirection::Up));
        assert_eq!(c.value(), 15, "saturated at top");
        c.load(0);
        c.clock(CountDirection::Down);
        assert_eq!(c.value(), 0, "saturated at bottom");
    }

    #[test]
    fn load_masks_to_width() {
        let mut c = UpDownCounter::new(6, OverflowMode::Wrap);
        c.load(0x1FF);
        assert_eq!(c.value(), 63);
        assert!(c.at_terminal());
    }

    #[test]
    fn display_shows_value_and_max() {
        let mut c = UpDownCounter::new(6, OverflowMode::Wrap);
        c.load(19);
        assert_eq!(format!("{c}"), "19/63");
    }

    #[test]
    fn divider_derives_system_cycle() {
        // 64 MHz / 64 = 1 MHz: fires once every 64 ticks.
        let mut div = ClockDivider::new(64);
        let mut fires = 0;
        for _ in 0..640 {
            if div.tick() {
                fires += 1;
            }
        }
        assert_eq!(fires, 10);
        assert_eq!(div.phase(), 0);
    }

    #[test]
    fn divider_phase_and_reset() {
        let mut div = ClockDivider::new(4);
        div.tick();
        div.tick();
        assert_eq!(div.phase(), 2);
        div.reset();
        assert_eq!(div.phase(), 0);
        assert_eq!(div.period(), 4);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_divider_rejected() {
        let _ = ClockDivider::new(0);
    }
}
