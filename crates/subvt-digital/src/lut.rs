//! The rate controller's look-up table.
//!
//! Paper Sec. III: "Based on the range of the queue length, the
//! location of the look up table is selected from which a 6-bit word is
//! fetched. This is the desired voltage value encoded as bits. … The
//! look up table is updated at regular intervals as the variations are
//! sensed and needs to be corrected."

use std::fmt;

/// A 6-bit voltage word (0..=63); `w × 18.75 mV` at the DC-DC output.
pub type VoltageWord = u8;

/// Number of distinct 6-bit words.
pub const WORD_LEVELS: u16 = 64;

/// The queue-length-banded voltage LUT, including the global shift the
/// compensation loop applies when the TDC signature reveals a process
/// or temperature shift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoltageLut {
    /// Upper queue-length bound (inclusive) of each band, ascending.
    band_bounds: Vec<usize>,
    /// Voltage word per band; one longer than `band_bounds` (the last
    /// entry covers everything above the last bound).
    words: Vec<VoltageWord>,
    /// Net compensation shift applied on read, in LSBs.
    shift: i16,
}

/// Error constructing a [`VoltageLut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LutError {
    /// `words` must be exactly one longer than `band_bounds`.
    ShapeMismatch {
        /// Number of band bounds supplied.
        bounds: usize,
        /// Number of words supplied.
        words: usize,
    },
    /// Band bounds must be strictly ascending.
    UnsortedBounds,
    /// A word exceeds the 6-bit range.
    WordOutOfRange {
        /// The offending word.
        word: VoltageWord,
    },
}

impl fmt::Display for LutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutError::ShapeMismatch { bounds, words } => write!(
                f,
                "need exactly bounds+1 words ({bounds} bounds, {words} words)"
            ),
            LutError::UnsortedBounds => write!(f, "band bounds must be strictly ascending"),
            LutError::WordOutOfRange { word } => {
                write!(f, "voltage word {word} exceeds the 6-bit range")
            }
        }
    }
}

impl std::error::Error for LutError {}

impl VoltageLut {
    /// Builds a LUT from band bounds and per-band words.
    ///
    /// # Errors
    ///
    /// Returns a [`LutError`] when the shape is inconsistent, bounds
    /// are not ascending, or a word exceeds 6 bits.
    pub fn new(band_bounds: Vec<usize>, words: Vec<VoltageWord>) -> Result<VoltageLut, LutError> {
        if words.len() != band_bounds.len() + 1 {
            return Err(LutError::ShapeMismatch {
                bounds: band_bounds.len(),
                words: words.len(),
            });
        }
        if band_bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(LutError::UnsortedBounds);
        }
        if let Some(&word) = words.iter().find(|&&w| u16::from(w) >= WORD_LEVELS) {
            return Err(LutError::WordOutOfRange { word });
        }
        Ok(VoltageLut {
            band_bounds,
            words,
            shift: 0,
        })
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.words.len()
    }

    /// Current compensation shift in LSBs.
    pub fn shift(&self) -> i16 {
        self.shift
    }

    /// Band index a queue length falls in.
    pub fn band_of(&self, queue_length: usize) -> usize {
        self.band_bounds
            .partition_point(|&bound| bound < queue_length)
    }

    /// Looks up the (shift-compensated) voltage word for a queue
    /// length, clamped to the 6-bit range.
    pub fn lookup(&self, queue_length: usize) -> VoltageWord {
        let base = i16::from(self.words[self.band_of(queue_length)]);
        (base + self.shift).clamp(0, i16::from(WORD_LEVELS as u8 - 1)) as VoltageWord
    }

    /// Raw (uncompensated) word of a band.
    ///
    /// # Panics
    ///
    /// Panics if `band` is out of range.
    pub fn raw_word(&self, band: usize) -> VoltageWord {
        self.words[band]
    }

    /// Applies a compensation shift: the paper's "the shift in this one
    /// bit needs to be reflected in the LUT, so that the values coming
    /// out from the rate controller … \[are\] compensated".
    pub fn apply_shift(&mut self, delta: i16) {
        self.shift += delta;
    }

    /// Clears the accumulated compensation.
    pub fn reset_shift(&mut self) {
        self.shift = 0;
    }

    /// Overwrites the raw word of one band (a design-time update).
    ///
    /// # Panics
    ///
    /// Panics if `band` is out of range or `word` exceeds 6 bits.
    pub fn set_word(&mut self, band: usize, word: VoltageWord) {
        assert!(u16::from(word) < WORD_LEVELS, "word {word} exceeds 6 bits");
        self.words[band] = word;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lut_fixture() -> VoltageLut {
        // Queue ≤ 4 → word 11 (~206 mV), ≤ 12 → 19 (~356 mV),
        // ≤ 24 → 32 (600 mV), above → 47 (~881 mV).
        VoltageLut::new(vec![4, 12, 24], vec![11, 19, 32, 47]).expect("valid lut")
    }

    #[test]
    fn banding_selects_expected_words() {
        let lut = lut_fixture();
        assert_eq!(lut.bands(), 4);
        assert_eq!(lut.lookup(0), 11);
        assert_eq!(lut.lookup(4), 11);
        assert_eq!(lut.lookup(5), 19);
        assert_eq!(lut.lookup(12), 19);
        assert_eq!(lut.lookup(13), 32);
        assert_eq!(lut.lookup(24), 32);
        assert_eq!(lut.lookup(25), 47);
        assert_eq!(lut.lookup(10_000), 47);
    }

    #[test]
    fn band_of_is_consistent_with_lookup() {
        let lut = lut_fixture();
        for q in 0..40 {
            assert_eq!(lut.lookup(q), lut.raw_word(lut.band_of(q)));
        }
    }

    #[test]
    fn one_bit_compensation_shift() {
        // The paper's worked example: word 19 must become 20 after the
        // TDC reveals a 1-LSB (18.75 mV) slow-corner shift.
        let mut lut = lut_fixture();
        lut.apply_shift(1);
        assert_eq!(lut.lookup(10), 20);
        assert_eq!(lut.shift(), 1);
        lut.apply_shift(-1);
        assert_eq!(lut.lookup(10), 19);
        lut.apply_shift(-3);
        lut.reset_shift();
        assert_eq!(lut.lookup(10), 19);
    }

    #[test]
    fn shift_clamps_to_code_range() {
        let mut lut = lut_fixture();
        lut.apply_shift(100);
        assert_eq!(lut.lookup(30), 63);
        lut.reset_shift();
        lut.apply_shift(-100);
        assert_eq!(lut.lookup(0), 0);
    }

    #[test]
    fn set_word_updates_band() {
        let mut lut = lut_fixture();
        lut.set_word(0, 13);
        assert_eq!(lut.lookup(2), 13);
    }

    #[test]
    fn shape_errors() {
        assert_eq!(
            VoltageLut::new(vec![4], vec![1]),
            Err(LutError::ShapeMismatch {
                bounds: 1,
                words: 1
            })
        );
        assert_eq!(
            VoltageLut::new(vec![5, 5], vec![1, 2, 3]),
            Err(LutError::UnsortedBounds)
        );
        assert_eq!(
            VoltageLut::new(vec![4], vec![1, 64]),
            Err(LutError::WordOutOfRange { word: 64 })
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 6 bits")]
    fn set_word_rejects_wide_word() {
        lut_fixture().set_word(0, 70);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VoltageLut::new(vec![4], vec![1]).unwrap_err();
        assert!(e.to_string().contains("bounds+1"));
    }
}
