//! The DC-DC converter's magnitude comparator.
//!
//! Paper Sec. III: "The comparator output is a two bit value based on
//! whether the output voltage Vout is less than ("01") or equal to
//! ("10") or greater than ("11") the desired voltage."

use std::fmt;

use crate::counter::CountDirection;

/// Outcome of comparing the measured voltage code against the desired
/// code, with the paper's 2-bit encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparison {
    /// Measured below desired — drive the supply up ("01").
    Less,
    /// Measured equals desired — hold ("10").
    Equal,
    /// Measured above desired — drive the supply down ("11").
    Greater,
}

impl Comparison {
    /// The paper's 2-bit encoding of the outcome.
    pub fn to_bits(self) -> u8 {
        match self {
            Comparison::Less => 0b01,
            Comparison::Equal => 0b10,
            Comparison::Greater => 0b11,
        }
    }

    /// Decodes the paper's 2-bit encoding.
    ///
    /// Returns `None` for the unused pattern `00`.
    pub fn from_bits(bits: u8) -> Option<Comparison> {
        match bits & 0b11 {
            0b01 => Some(Comparison::Less),
            0b10 => Some(Comparison::Equal),
            0b11 => Some(Comparison::Greater),
            _ => None,
        }
    }

    /// The counter command this comparison implies for the supply:
    /// below-target measurements push the voltage up, above-target
    /// measurements pull it down.
    pub fn to_direction(self) -> CountDirection {
        match self {
            Comparison::Less => CountDirection::Up,
            Comparison::Equal => CountDirection::Hold,
            Comparison::Greater => CountDirection::Down,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Less => "less(01)",
            Comparison::Equal => "equal(10)",
            Comparison::Greater => "greater(11)",
        };
        f.write_str(s)
    }
}

/// A combinational magnitude comparator over voltage codes, with an
/// optional dead band (codes within `tolerance` LSBs compare equal, so
/// converter dither does not cause hunting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MagnitudeComparator {
    tolerance: u8,
}

impl MagnitudeComparator {
    /// An exact comparator (zero dead band).
    pub fn new() -> MagnitudeComparator {
        MagnitudeComparator { tolerance: 0 }
    }

    /// A comparator treating codes within `tolerance` LSBs as equal.
    pub fn with_tolerance(tolerance: u8) -> MagnitudeComparator {
        MagnitudeComparator { tolerance }
    }

    /// Compares `measured` against `desired`.
    pub fn compare(&self, measured: u64, desired: u64) -> Comparison {
        let diff = measured.abs_diff(desired);
        if diff <= u64::from(self.tolerance) {
            Comparison::Equal
        } else if measured < desired {
            Comparison::Less
        } else {
            Comparison::Greater
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bit_encoding() {
        assert_eq!(Comparison::Less.to_bits(), 0b01);
        assert_eq!(Comparison::Equal.to_bits(), 0b10);
        assert_eq!(Comparison::Greater.to_bits(), 0b11);
        for c in [Comparison::Less, Comparison::Equal, Comparison::Greater] {
            assert_eq!(Comparison::from_bits(c.to_bits()), Some(c));
        }
        assert_eq!(Comparison::from_bits(0b00), None);
    }

    #[test]
    fn exact_comparison() {
        let cmp = MagnitudeComparator::new();
        assert_eq!(cmp.compare(10, 19), Comparison::Less);
        assert_eq!(cmp.compare(19, 19), Comparison::Equal);
        assert_eq!(cmp.compare(25, 19), Comparison::Greater);
    }

    #[test]
    fn dead_band_absorbs_dither() {
        let cmp = MagnitudeComparator::with_tolerance(1);
        assert_eq!(cmp.compare(18, 19), Comparison::Equal);
        assert_eq!(cmp.compare(20, 19), Comparison::Equal);
        assert_eq!(cmp.compare(17, 19), Comparison::Less);
        assert_eq!(cmp.compare(21, 19), Comparison::Greater);
    }

    #[test]
    fn directions_close_the_loop() {
        assert_eq!(Comparison::Less.to_direction(), CountDirection::Up);
        assert_eq!(Comparison::Equal.to_direction(), CountDirection::Hold);
        assert_eq!(Comparison::Greater.to_direction(), CountDirection::Down);
    }

    #[test]
    fn display_shows_encoding() {
        assert_eq!(format!("{}", Comparison::Less), "less(01)");
        assert_eq!(format!("{}", Comparison::Equal), "equal(10)");
    }
}
