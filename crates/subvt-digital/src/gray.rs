//! Gray-code counters.
//!
//! FIFO pointers that cross clock domains (the controller's input side
//! runs on the data clock, the drain side on the load clock) must be
//! Gray-coded so a metastable sample is off by at most one — the
//! classic async-FIFO construction backing the paper's Fig. 5 FIFO.

use std::fmt;

/// Converts binary to Gray code.
#[inline]
pub fn to_gray(binary: u64) -> u64 {
    binary ^ (binary >> 1)
}

/// Converts Gray code back to binary.
#[inline]
pub fn from_gray(gray: u64) -> u64 {
    let mut b = gray;
    let mut shift = 1;
    while shift < 64 {
        b ^= b >> shift;
        shift <<= 1;
    }
    b
}

/// A width-limited Gray-code counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrayCounter {
    binary: u64,
    width: u8,
}

impl GrayCounter {
    /// Creates a `width`-bit Gray counter at zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 63.
    pub fn new(width: u8) -> GrayCounter {
        assert!((1..=63).contains(&width), "width {width} out of range");
        GrayCounter { binary: 0, width }
    }

    /// Counter width.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Current value in binary.
    pub fn binary(&self) -> u64 {
        self.binary
    }

    /// Current value in Gray code.
    pub fn gray(&self) -> u64 {
        to_gray(self.binary)
    }

    /// Advances one count (wrapping), returning the new Gray value.
    pub fn increment(&mut self) -> u64 {
        let mask = (1u64 << self.width) - 1;
        self.binary = (self.binary + 1) & mask;
        self.gray()
    }
}

impl fmt::Display for GrayCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gray {:0w$b} (bin {})",
            self.gray(),
            self.binary,
            w = usize::from(self.width)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_round_trip() {
        for v in 0..1024u64 {
            assert_eq!(from_gray(to_gray(v)), v);
        }
        assert_eq!(from_gray(to_gray(u64::MAX)), u64::MAX);
    }

    #[test]
    fn adjacent_counts_differ_in_one_bit() {
        let mut c = GrayCounter::new(6);
        let mut prev = c.gray();
        for _ in 0..200 {
            let next = c.increment();
            assert_eq!((prev ^ next).count_ones(), 1, "{prev:b} -> {next:b}");
            prev = next;
        }
    }

    #[test]
    fn wraps_with_single_bit_change() {
        let mut c = GrayCounter::new(4);
        for _ in 0..15 {
            c.increment();
        }
        let at_max = c.gray();
        let wrapped = c.increment();
        assert_eq!(c.binary(), 0);
        assert_eq!((at_max ^ wrapped).count_ones(), 1);
    }

    #[test]
    fn display_shows_both_codes() {
        let mut c = GrayCounter::new(4);
        c.increment();
        c.increment();
        assert_eq!(format!("{c}"), "gray 0011 (bin 2)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        let _ = GrayCounter::new(0);
    }
}
