//! # subvt-digital
//!
//! Cycle/event-accurate RTL primitives for the `subvt` reproduction of
//! *"Variation Resilient Adaptive Controller for Subthreshold
//! Circuits"* (DATE 2009) — the blocks the paper modelled in VHDL:
//!
//! * [`flipflop`] — D and toggle flip-flops (TDC sampling, PWM output);
//! * [`register`] — load-enabled registers;
//! * [`counter`] — the 6-bit up/down counter with terminal count, and
//!   the clock divider deriving the 1 MHz system cycle from 64 MHz;
//! * [`encoder`] — thermometer-to-binary encoding of quantizer words,
//!   including the Table I hex formatting and double-latch detection;
//! * [`comparator`] — the "01/10/11" magnitude comparator of the DC-DC
//!   control loop;
//! * [`fifo`] — the input FIFO whose queue length drives the rate
//!   controller, with loss accounting;
//! * [`lut`] — the queue-length-banded voltage look-up table with the
//!   compensation shift;
//! * [`pwm`] — the N/64 duty-cycle PWM generator with guard bounds.
//!
//! ## Example
//!
//! The comparator-to-counter path of the converter's feedback loop:
//!
//! ```
//! use subvt_digital::comparator::{Comparison, MagnitudeComparator};
//! use subvt_digital::counter::{CountDirection, OverflowMode, UpDownCounter};
//!
//! let cmp = MagnitudeComparator::new();
//! let mut duty = UpDownCounter::new(6, OverflowMode::Saturate);
//! duty.load(19);
//!
//! // Measured code 18 < desired 19 → "01" → drive the supply up.
//! let c = cmp.compare(18, 19);
//! assert_eq!(c, Comparison::Less);
//! assert_eq!(c.to_bits(), 0b01);
//! duty.clock(c.to_direction());
//! assert_eq!(duty.value(), 20);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod async_fifo;
pub mod comparator;
pub mod counter;
pub mod encoder;
pub mod fifo;
pub mod flipflop;
pub mod gray;
pub mod lut;
pub mod pwm;
pub mod register;
pub mod voter;

pub use async_fifo::AsyncFifo;
pub use comparator::{Comparison, MagnitudeComparator};
pub use counter::{ClockDivider, CountDirection, OverflowMode, UpDownCounter};
pub use encoder::{EncodeError, QuantizerWord};
pub use fifo::Fifo;
pub use flipflop::{DFlipFlop, ToggleFlipFlop};
pub use gray::{from_gray, to_gray, GrayCounter};
pub use lut::{LutError, VoltageLut, VoltageWord, WORD_LEVELS};
pub use pwm::PwmGenerator;
pub use register::Register;
pub use voter::{majority, median_code, MedianVoter};
