//! Thermometer-to-binary encoding for the TDC quantizer output
//! (paper Fig. 4: "the quantizer provides the quantized delay and is
//! encoded to a 6-bit value").

use std::fmt;

/// Why an encode attempt could not produce a trustworthy code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The word contains more than one contiguous run of ones — the
    /// paper's "data being latched twice by a faster Ref_clk" failure
    /// at 0.6 V (Sec. II-A).
    MultipleBursts {
        /// Number of distinct one-runs found.
        bursts: u32,
    },
    /// The word is all zeros: the edge never arrived in the window.
    Empty,
    /// The word is all ones: the measurement saturated the line.
    Saturated,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::MultipleBursts { bursts } => write!(
                f,
                "quantizer word holds {bursts} bursts (double-latched; Ref_clk too fast for this supply)"
            ),
            EncodeError::Empty => write!(f, "quantizer word is empty (edge did not reach the line)"),
            EncodeError::Saturated => {
                write!(f, "quantizer word is saturated (edge passed the whole line)")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A thermometer-style quantizer word: `bits[0]` (LSB) is the delay
/// stage nearest the input; a set bit means that stage sampled high.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantizerWord {
    bits: u64,
    width: u8,
}

impl QuantizerWord {
    /// Wraps a raw sampled word of `width` stages.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u8, bits: u64) -> QuantizerWord {
        assert!((1..=64).contains(&width), "width {width} out of range");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        QuantizerWord {
            bits: bits & mask,
            width,
        }
    }

    /// Raw bits, stage 0 at the LSB.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of stages.
    pub fn width(self) -> u8 {
        self.width
    }

    /// Number of stages sampled high.
    pub fn ones(self) -> u32 {
        self.bits.count_ones()
    }

    /// Number of contiguous one-runs in the word.
    pub fn burst_count(self) -> u32 {
        // A run starts at each 0→1 boundary scanning from bit 0.
        let starts = self.bits & !(self.bits << 1);
        starts.count_ones()
    }

    /// Length of the run of ones starting at stage 0.
    pub fn leading_run(self) -> u32 {
        (!self.bits).trailing_zeros().min(u32::from(self.width))
    }

    /// Encodes the word to a stage position: the length of the
    /// contiguous one-run that starts at stage 0 (where the propagating
    /// edge has reached).
    ///
    /// # Errors
    ///
    /// * [`EncodeError::Empty`] / [`EncodeError::Saturated`] when the
    ///   word carries no edge;
    /// * [`EncodeError::MultipleBursts`] when more than one run is
    ///   present (unreliable, double-latched measurement).
    pub fn encode(self) -> Result<u32, EncodeError> {
        if self.bits == 0 {
            return Err(EncodeError::Empty);
        }
        if self.ones() == u32::from(self.width) {
            return Err(EncodeError::Saturated);
        }
        let bursts = self.burst_count();
        if bursts > 1 {
            return Err(EncodeError::MultipleBursts { bursts });
        }
        // Exactly one burst. If it does not start at stage 0 the edge
        // position is the end of the burst.
        let start = self.bits.trailing_zeros();
        let len = (self.bits >> start).trailing_ones();
        Ok(start + len)
    }

    /// Encodes with single-bubble tolerance: isolated zero "bubbles"
    /// inside an otherwise contiguous run (a classic flash/TDC
    /// metastability artefact) are filled before encoding.
    ///
    /// # Errors
    ///
    /// As [`QuantizerWord::encode`], after bubble filling.
    pub fn encode_bubble_tolerant(self) -> Result<u32, EncodeError> {
        // Fill isolated zeros that have ones on both sides.
        let filled = self.bits | ((self.bits << 1) & (self.bits >> 1));
        QuantizerWord::new(self.width, filled).encode()
    }

    /// Parses a word from the paper's Table I format (the inverse of
    /// [`QuantizerWord::to_table_hex`]): hex digits with stage 0 as the
    /// most significant displayed bit, whitespace ignored.
    ///
    /// Returns `None` if the string is not exactly the hex digits a
    /// `width`-stage word formats to, or sets a bit beyond `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn from_table_hex(width: u8, s: &str) -> Option<QuantizerWord> {
        assert!((1..=64).contains(&width), "width {width} out of range");
        let digits: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if digits.len() != usize::from(width).div_ceil(4) {
            return None;
        }
        let display = u64::from_str_radix(&digits, 16).ok()?;
        if width < 64 && display >> width != 0 {
            return None;
        }
        let mut bits: u64 = 0;
        for i in 0..width {
            if (display >> (width - 1 - i)) & 1 == 1 {
                bits |= 1 << i;
            }
        }
        Some(QuantizerWord::new(width, bits))
    }

    /// Formats the word as the paper's Table I does: hex, MSB-first
    /// with stage 0 as the most significant displayed bit, grouped in
    /// 16-bit words.
    pub fn to_table_hex(self) -> String {
        // Stage 0 is displayed first (leftmost), i.e. we reverse the
        // bit order into display space.
        let mut display: u64 = 0;
        for i in 0..self.width {
            if (self.bits >> i) & 1 == 1 {
                display |= 1 << (self.width - 1 - i);
            }
        }
        let hex_digits = usize::from(self.width).div_ceil(4);
        let raw = format!("{display:0width$X}", width = hex_digits);
        raw.as_bytes()
            .chunks(4)
            .map(|c| std::str::from_utf8(c).expect("ascii hex"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for QuantizerWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_of_run(width: u8, run: u32) -> QuantizerWord {
        let bits = if run == 0 { 0 } else { (1u64 << run) - 1 };
        QuantizerWord::new(width, bits)
    }

    #[test]
    fn clean_run_encodes_to_its_length() {
        for run in 1..63u32 {
            let w = word_of_run(64, run);
            assert_eq!(w.encode(), Ok(run));
            assert_eq!(w.leading_run(), run);
            assert_eq!(w.burst_count(), 1);
        }
    }

    #[test]
    fn offset_burst_encodes_to_trailing_edge() {
        // 7 zeros then 33 ones (the paper's 0.8 V shape): position 40.
        let bits = ((1u64 << 33) - 1) << 7;
        let w = QuantizerWord::new(64, bits);
        assert_eq!(w.encode(), Ok(40));
    }

    #[test]
    fn empty_and_saturated_are_errors() {
        assert_eq!(QuantizerWord::new(64, 0).encode(), Err(EncodeError::Empty));
        assert_eq!(
            QuantizerWord::new(16, 0xFFFF).encode(),
            Err(EncodeError::Saturated)
        );
    }

    #[test]
    fn double_latch_is_detected() {
        // Two bursts — the paper's unreliable 0.6 V signature.
        let bits = 0b0000_1111_1110_0000_0001_1111_1100_0000u64;
        let w = QuantizerWord::new(32, bits);
        assert_eq!(w.burst_count(), 2);
        assert_eq!(w.encode(), Err(EncodeError::MultipleBursts { bursts: 2 }));
        let msg = w.encode().unwrap_err().to_string();
        assert!(msg.contains("double-latched"), "{msg}");
    }

    #[test]
    fn bubble_is_repaired() {
        // Run of 9 with a bubble at position 4.
        let bits = 0b1_1110_1111u64;
        let w = QuantizerWord::new(16, bits);
        assert!(w.encode().is_err());
        assert_eq!(w.encode_bubble_tolerant(), Ok(9));
    }

    #[test]
    fn two_adjacent_bubbles_stay_unreliable() {
        let bits = 0b1_1100_1111u64;
        let w = QuantizerWord::new(16, bits);
        assert!(w.encode_bubble_tolerant().is_err());
    }

    #[test]
    fn table_hex_matches_paper_format() {
        // 7 leading ones out of 64 stages → "FE00 0000 0000 0000"
        // (paper Table I, 1.2 V row).
        let w = word_of_run(64, 7);
        assert_eq!(w.to_table_hex(), "FE00 0000 0000 0000");
        // 23 leading ones → "FFFF FE00 0000 0000" (1.0 V row).
        let w = word_of_run(64, 23);
        assert_eq!(w.to_table_hex(), "FFFF FE00 0000 0000");
        assert_eq!(format!("{w}"), "FFFF FE00 0000 0000");
    }

    #[test]
    fn table_hex_with_offset_matches_08v_row() {
        // 7 zeros, 33 ones, 24 zeros → "01FF FFFF FF00 0000"
        // (paper Table I, 0.8 V row).
        let bits = ((1u64 << 33) - 1) << 7;
        let w = QuantizerWord::new(64, bits);
        assert_eq!(w.to_table_hex(), "01FF FFFF FF00 0000");
    }

    #[test]
    fn narrow_word_hex() {
        let w = QuantizerWord::new(8, 0b0000_0111);
        assert_eq!(w.to_table_hex(), "E0");
    }

    #[test]
    fn table_hex_round_trips() {
        for bits in [0u64, 0x7F, ((1u64 << 33) - 1) << 7, u64::MAX] {
            let w = QuantizerWord::new(64, bits);
            let parsed = QuantizerWord::from_table_hex(64, &w.to_table_hex());
            assert_eq!(parsed, Some(w));
        }
        let narrow = QuantizerWord::new(8, 0b0000_0111);
        assert_eq!(
            QuantizerWord::from_table_hex(8, &narrow.to_table_hex()),
            Some(narrow)
        );
    }

    #[test]
    fn bad_table_hex_is_rejected() {
        // Wrong digit count for the width.
        assert_eq!(QuantizerWord::from_table_hex(64, "FE00"), None);
        // Non-hex characters.
        assert_eq!(QuantizerWord::from_table_hex(16, "GG00"), None);
        // A bit beyond the width (width 7 formats to 2 digits ≤ 0x7F
        // in display space).
        assert_eq!(QuantizerWord::from_table_hex(7, "FF"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        let _ = QuantizerWord::new(0, 0);
    }
}
