//! Asynchronous (dual-clock) FIFO with Gray-coded pointer crossing.
//!
//! The controller's FIFO sits between two timing worlds: data arrives
//! on the producer's clock while the load drains on a clock derived
//! from the (variable!) subthreshold supply. A safe implementation
//! crosses each pointer into the other domain through two-flop
//! synchronizers in Gray code, so a metastable capture costs at most a
//! one-count-stale (conservative) occupancy estimate — never a corrupt
//! one.

use std::collections::VecDeque;
use std::fmt;

use crate::gray::{from_gray, to_gray};

/// A two-stage synchronizer for a multi-bit Gray value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Synchronizer {
    stage1: u64,
    stage2: u64,
}

impl Synchronizer {
    /// Clocks the synchronizer in the destination domain.
    fn clock(&mut self, input: u64) -> u64 {
        self.stage2 = self.stage1;
        self.stage1 = input;
        self.stage2
    }

    /// The value visible in the destination domain.
    fn output(&self) -> u64 {
        self.stage2
    }
}

/// A dual-clock FIFO. `clock_write` and `clock_read` are called from
/// their respective domains in any interleaving.
#[derive(Debug, Clone)]
pub struct AsyncFifo<T> {
    storage: VecDeque<T>,
    capacity: usize,
    /// Free-running binary pointers (one extra wrap bit each).
    write_ptr: u64,
    read_ptr: u64,
    /// Cross-domain views.
    write_ptr_in_read_domain: Synchronizer,
    read_ptr_in_write_domain: Synchronizer,
    dropped: u64,
}

impl<T> AsyncFifo<T> {
    /// Creates a FIFO with `capacity` slots (a power of two, for the
    /// wrap-bit trick).
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a power of two ≥ 2.
    pub fn new(capacity: usize) -> AsyncFifo<T> {
        assert!(
            capacity >= 2 && capacity.is_power_of_two(),
            "capacity must be a power of two ≥ 2"
        );
        AsyncFifo {
            storage: VecDeque::with_capacity(capacity),
            capacity,
            write_ptr: 0,
            read_ptr: 0,
            write_ptr_in_read_domain: Synchronizer::default(),
            read_ptr_in_write_domain: Synchronizer::default(),
            dropped: 0,
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items dropped at full-FIFO writes.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True occupancy (testbench view; hardware never sees this).
    pub fn occupancy(&self) -> usize {
        self.storage.len()
    }

    /// Write-domain full test using the *synchronized* read pointer —
    /// conservative: may report full when space just opened.
    pub fn appears_full(&self) -> bool {
        let synced_read = from_gray(self.read_ptr_in_write_domain.output());
        self.write_ptr.wrapping_sub(synced_read) >= self.capacity as u64
    }

    /// Read-domain empty test using the *synchronized* write pointer —
    /// conservative: may report empty when data just landed.
    pub fn appears_empty(&self) -> bool {
        let synced_write = from_gray(self.write_ptr_in_read_domain.output());
        synced_write == self.read_ptr
    }

    /// Read-domain occupancy estimate (what drives the rate controller).
    pub fn apparent_queue_length(&self) -> usize {
        let synced_write = from_gray(self.write_ptr_in_read_domain.output());
        synced_write.wrapping_sub(self.read_ptr) as usize
    }

    /// One write-domain clock edge: synchronizes the read pointer and
    /// pushes `item` if the FIFO does not appear full. Returns whether
    /// the item was accepted.
    pub fn clock_write(&mut self, item: Option<T>) -> bool {
        self.read_ptr_in_write_domain.clock(to_gray(self.read_ptr));
        match item {
            Some(item) if !self.appears_full() => {
                self.storage.push_back(item);
                self.write_ptr = self.write_ptr.wrapping_add(1);
                true
            }
            Some(_) => {
                self.dropped += 1;
                false
            }
            None => false,
        }
    }

    /// One read-domain clock edge: synchronizes the write pointer and
    /// pops an item if the FIFO does not appear empty.
    pub fn clock_read(&mut self, pop: bool) -> Option<T> {
        self.write_ptr_in_read_domain.clock(to_gray(self.write_ptr));
        if pop && !self.appears_empty() {
            let item = self.storage.pop_front();
            if item.is_some() {
                self.read_ptr = self.read_ptr.wrapping_add(1);
            }
            item
        } else {
            None
        }
    }
}

impl<T> fmt::Display for AsyncFifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "async fifo {}/{} (apparent {})",
            self.occupancy(),
            self.capacity,
            self.apparent_queue_length()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_crosses_domains_in_order() {
        let mut f: AsyncFifo<u32> = AsyncFifo::new(8);
        for i in 0..5 {
            assert!(f.clock_write(Some(i)));
        }
        // The read domain needs two read clocks before the data shows
        // (two-flop synchronizer latency).
        assert_eq!(f.clock_read(true), None);
        assert_eq!(f.clock_read(true), Some(0));
        assert_eq!(f.clock_read(true), Some(1));
        assert_eq!(f.clock_read(true), Some(2));
    }

    #[test]
    fn empty_flag_is_conservative_not_wrong() {
        let mut f: AsyncFifo<u8> = AsyncFifo::new(4);
        f.clock_write(Some(7));
        // Immediately after the write, the read domain still sees empty.
        assert!(f.appears_empty());
        assert_eq!(f.occupancy(), 1, "the data is physically there");
        f.clock_read(false);
        f.clock_read(false);
        assert!(!f.appears_empty(), "visible after two read clocks");
        assert_eq!(f.clock_read(true), Some(7));
    }

    #[test]
    fn full_flag_is_conservative_not_wrong() {
        let mut f: AsyncFifo<u8> = AsyncFifo::new(4);
        for i in 0..4 {
            assert!(f.clock_write(Some(i)));
        }
        assert!(f.appears_full());
        // Drain one in the read domain...
        f.clock_read(false);
        f.clock_read(false);
        assert_eq!(f.clock_read(true), Some(0));
        // ...the write domain still *appears* full until the pointer
        // crosses back (two write clocks).
        assert!(f.appears_full());
        assert!(!f.clock_write(Some(99)), "conservatively rejected");
        f.clock_write(None);
        assert!(!f.appears_full(), "space visible after sync");
        assert!(f.clock_write(Some(4)));
    }

    #[test]
    fn no_data_is_ever_lost_or_duplicated() {
        // Randomized interleaving of domain clocks; conservation must
        // hold exactly.
        use subvt_rng::Rng;
        use subvt_rng::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        let mut f: AsyncFifo<u64> = AsyncFifo::new(8);
        let mut next = 0u64;
        let mut received = Vec::new();
        let mut accepted = 0u64;
        for _ in 0..5_000 {
            if rng.gen_bool(0.5) {
                let offer = rng.gen_bool(0.7);
                if f.clock_write(offer.then_some(next)) {
                    accepted += 1;
                    next += 1;
                } else if offer {
                    next += 1; // dropped item still consumed an id
                }
            } else if let Some(v) = f.clock_read(rng.gen_bool(0.8)) {
                received.push(v);
            }
        }
        // Drain.
        loop {
            f.clock_read(false);
            if f.appears_empty() && f.occupancy() == 0 {
                break;
            }
            if let Some(v) = f.clock_read(true) {
                received.push(v);
            }
        }
        assert_eq!(received.len() as u64, accepted);
        // FIFO order: received ids strictly increasing.
        assert!(received.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn apparent_queue_length_lags_but_never_overshoots() {
        let mut f: AsyncFifo<u8> = AsyncFifo::new(8);
        for i in 0..6 {
            f.clock_write(Some(i));
        }
        assert_eq!(f.apparent_queue_length(), 0, "not yet visible");
        f.clock_read(false);
        f.clock_read(false);
        assert_eq!(f.apparent_queue_length(), 6);
        assert!(f.apparent_queue_length() <= f.occupancy());
    }

    #[test]
    fn display_shows_both_views() {
        let mut f: AsyncFifo<u8> = AsyncFifo::new(4);
        f.clock_write(Some(1));
        assert_eq!(format!("{f}"), "async fifo 1/4 (apparent 0)");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = AsyncFifo::<u8>::new(6);
    }
}
