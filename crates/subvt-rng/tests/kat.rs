//! Known-answer tests pinning the generators to the published
//! reference implementations.
//!
//! The expected words were produced by compiling the reference C code
//! (Vigna's `splitmix64.c` and `xoshiro256plusplus.c`) and printing
//! the first outputs; `splitmix64(0)`'s leading value
//! `0xE220A8397B1DCDAF` is the widely published cross-check.

use subvt_rng::{splitmix64, Rng, SplitMix64, Xoshiro256pp};

#[test]
fn splitmix64_seed_zero_reference_vector() {
    let mut state = 0u64;
    let got: Vec<u64> = (0..5).map(|_| splitmix64(&mut state)).collect();
    assert_eq!(
        got,
        [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ]
    );
}

#[test]
fn splitmix64_nonzero_seed_reference_vector() {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let got: Vec<u64> = (0..3).map(|_| splitmix64(&mut state)).collect();
    assert_eq!(
        got,
        [
            0x1619_22C6_45CE_50E8,
            0xAD76_0CAF_A169_7B60,
            0x3501_FF44_902C_A50D,
        ]
    );
}

#[test]
fn splitmix64_generator_matches_free_function() {
    let mut state = 42u64;
    let mut gen = SplitMix64::seed_from_u64(42);
    for _ in 0..100 {
        assert_eq!(gen.next_u64(), splitmix64(&mut state));
    }
}

#[test]
fn xoshiro256pp_reference_vector_from_raw_state() {
    let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
    let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        [
            0x0000_0000_0280_0001,
            0x0000_0000_0380_0067,
            0x000C_C000_0380_0067,
            0x000C_C201_9944_00B2,
            0x8012_A201_9AC4_33CD,
        ]
    );
}

#[test]
fn xoshiro256pp_seeded_reference_vector() {
    // State expanded from seed 42 by four splitmix64 steps, then run
    // through the reference next() — pins the whole seeding chain.
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        [
            0xD076_4D4F_4476_689F,
            0x519E_4174_576F_3791,
            0xFBE0_7CFB_0C24_ED8C,
            0xB37D_9F60_0CD8_35B8,
            0xCB23_1C38_7484_6A73,
        ]
    );
}

#[test]
fn seeding_equals_manual_splitmix_expansion() {
    let mut sm = 7u64;
    let state = [
        splitmix64(&mut sm),
        splitmix64(&mut sm),
        splitmix64(&mut sm),
        splitmix64(&mut sm),
    ];
    let mut a = Xoshiro256pp::seed_from_u64(7);
    let mut b = Xoshiro256pp::from_state(state);
    assert!((0..50).all(|_| a.next_u64() == b.next_u64()));
}
