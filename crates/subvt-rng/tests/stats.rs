//! Statistical sanity checks over 10⁵ draws per distribution.
//!
//! Tolerances are set at roughly 5 standard errors so the (seeded,
//! deterministic) tests sit far from their thresholds while still
//! catching real distribution bugs: a wrong variance, a clipped tail,
//! a biased bit.

use subvt_rng::{Bernoulli, Distribution, LogNormal, Normal, Rng, StdRng, Uniform};

const N: usize = 100_000;

fn moments(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

#[test]
fn normal_moments() {
    let mut rng = StdRng::seed_from_u64(101);
    let d = Normal::new(2.0, 3.0);
    let samples: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
    let (mean, var) = moments(&samples);
    // SE(mean) = σ/√N ≈ 0.0095; SE(σ) ≈ σ/√(2N) ≈ 0.0067.
    assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    assert!((var.sqrt() - 3.0).abs() < 0.04, "sigma {}", var.sqrt());
}

#[test]
fn normal_tail_fractions() {
    let mut rng = StdRng::seed_from_u64(102);
    let d = Normal::new(0.0, 1.0);
    let beyond_2sigma = (0..N).filter(|_| d.sample(&mut rng).abs() > 2.0).count();
    let frac = beyond_2sigma as f64 / N as f64;
    // P(|Z| > 2) ≈ 0.0455; SE ≈ 0.00066.
    assert!((frac - 0.0455).abs() < 0.004, "2σ tail fraction {frac}");
}

#[test]
fn uniform_unit_moments() {
    let mut rng = StdRng::seed_from_u64(103);
    let samples: Vec<f64> = (0..N).map(|_| rng.next_f64()).collect();
    let (mean, var) = moments(&samples);
    // Uniform[0,1): mean 1/2 (SE ≈ 0.0009), variance 1/12.
    assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    assert!((var - 1.0 / 12.0).abs() < 0.002, "variance {var}");
}

#[test]
fn uniform_range_moments() {
    let mut rng = StdRng::seed_from_u64(104);
    let d = Uniform::new(-3.0f64, 5.0);
    let samples: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
    let (mean, var) = moments(&samples);
    assert!(samples.iter().all(|&x| (-3.0..5.0).contains(&x)));
    // Uniform[-3,5): mean 1, variance 8²/12 ≈ 5.333.
    assert!((mean - 1.0).abs() < 0.04, "mean {mean}");
    assert!((var - 64.0 / 12.0).abs() < 0.1, "variance {var}");
}

#[test]
fn uniform_integer_is_unbiased_across_buckets() {
    let mut rng = StdRng::seed_from_u64(105);
    let mut counts = [0usize; 7];
    for _ in 0..N {
        counts[rng.gen_range(0usize..7)] += 1;
    }
    let expect = N as f64 / 7.0;
    for (i, &c) in counts.iter().enumerate() {
        // 5σ of a binomial bucket ≈ 555.
        assert!(
            (c as f64 - expect).abs() < 600.0,
            "bucket {i}: {c} vs {expect}"
        );
    }
}

#[test]
fn lognormal_median() {
    let mut rng = StdRng::seed_from_u64(106);
    let d = LogNormal::new(0.7, 0.5);
    // The median of exp(N(mu, s)) is exp(mu): count the fraction below.
    let below = (0..N).filter(|_| d.sample(&mut rng) < 0.7f64.exp()).count();
    let frac = below as f64 / N as f64;
    assert!((frac - 0.5).abs() < 0.01, "median fraction {frac}");
}

#[test]
fn bernoulli_rate() {
    let mut rng = StdRng::seed_from_u64(107);
    let d = Bernoulli::new(0.3);
    let hits = (0..N).filter(|_| d.sample(&mut rng)).count();
    let frac = hits as f64 / N as f64;
    // SE ≈ 0.00145.
    assert!((frac - 0.3).abs() < 0.008, "rate {frac}");
}

#[test]
fn raw_bits_are_balanced() {
    // Each of the 64 output bit positions should be set half the time.
    let mut rng = StdRng::seed_from_u64(108);
    let mut ones = [0u32; 64];
    let draws = 20_000;
    for _ in 0..draws {
        let w = rng.next_u64();
        for (bit, count) in ones.iter_mut().enumerate() {
            *count += ((w >> bit) & 1) as u32;
        }
    }
    for (bit, &c) in ones.iter().enumerate() {
        let frac = f64::from(c) / f64::from(draws);
        assert!((frac - 0.5).abs() < 0.02, "bit {bit} set fraction {frac}");
    }
}
