//! The core generators: splitmix64 for seeding (and throwaway
//! streams), xoshiro256++ for everything else.
//!
//! Both match the published reference implementations bit-for-bit; the
//! known-answer vectors live in `tests/kat.rs`.

use crate::Rng;

/// One step of the splitmix64 sequence: advances `state` and returns
/// the next output.
///
/// This is the standard state-expansion function used to turn a single
/// `u64` seed into arbitrarily many well-mixed words (Steele, Lea &
/// Flood's SplittableRandom finalizer).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 as a self-contained generator.
///
/// Used internally to expand seeds; also handy when a test needs a
/// tiny independent stream and the full 256-bit state of
/// [`Xoshiro256pp`] is overkill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose first output is `splitmix64(seed + γ)`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Skips `n` outputs in constant time.
    ///
    /// The splitmix state only ever moves by the fixed increment γ, so
    /// `n` draws advance it by exactly `n·γ` (mod 2⁶⁴) — the finalizer
    /// never feeds back into the state.
    pub fn advance(&mut self, n: u64) {
        self.state = self
            .state
            .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): the workspace's
/// general-purpose generator.
///
/// 256 bits of state, period 2²⁵⁶−1, passes BigCrush; the `++`
/// scrambler makes all 64 output bits full quality. Not
/// cryptographic — this is a simulation workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace-wide default generator.
///
/// Simulation and test code should say `StdRng` so the concrete choice
/// can evolve without touching call sites (the name also kept the
/// migration off the external `rand` crate mechanical).
pub type StdRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Expands one `u64` seed into a full state via [`splitmix64`], as
    /// the reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Builds a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one fixed point of the
    /// transition function).
    pub fn from_state(s: [u64; 4]) -> Xoshiro256pp {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Xoshiro256pp { s }
    }

    /// The raw state words (for checkpointing a long simulation).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Skips `n` outputs, as if `next_u64` had been called `n` times.
    ///
    /// Small skips just step the generator; past the crossover where
    /// building a [`Jump`] matrix is cheaper than stepping, the skip is
    /// O(log n) regardless of `n`. Callers that reuse one skip
    /// distance many times should build the [`Jump`] once and
    /// [`Jump::apply`] it per use.
    pub fn advance(&mut self, n: u64) {
        // Crossover is empirically ~10⁶ sequential steps vs the ~100
        // GF(2) matrix products a jump build costs; stay comfortably on
        // the winning side of each regime.
        const JUMP_THRESHOLD: u64 = 1 << 20;
        if n < JUMP_THRESHOLD {
            for _ in 0..n {
                let _ = self.next_u64();
            }
        } else {
            Jump::by(n).apply(self);
        }
    }
}

/// The xoshiro256++ state-transition matrix raised to an arbitrary
/// power: a precomputed constant-time jump of `n` steps.
///
/// The transition in [`Xoshiro256pp::next_u64`] is linear over GF(2)
/// (shifts, XORs and rotates only — the `++` scrambler reads the state
/// but never feeds back), so `n` steps compose into one 256×256 bit
/// matrix. Building it is O(log n) dense matrix products
/// (square-and-multiply); applying it to a state is a few hundred word
/// XORs. This is how a 10⁷-die study snapshots chunk boundaries
/// without replaying the whole stream.
#[derive(Clone)]
pub struct Jump {
    /// Column-major over GF(2): `cols[j]` is the image of basis bit
    /// `j` (bit `j % 64` of state word `j / 64`).
    cols: [[u64; 4]; 256],
}

/// One application of the xoshiro256++ state transition (the linear
/// part of `next_u64`, which is all of it — the output computation is
/// read-only).
fn transition(s: &mut [u64; 4]) {
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
}

impl Jump {
    /// The jump matrix for exactly `n` steps (`n = 0` is the
    /// identity).
    pub fn by(n: u64) -> Jump {
        let mut result = Jump::identity();
        let mut base = Jump::one_step();
        let mut n = n;
        while n > 0 {
            if n & 1 == 1 {
                result = base.compose(&result);
            }
            n >>= 1;
            if n > 0 {
                base = base.compose(&base);
            }
        }
        result
    }

    /// Advances `rng` by the number of steps this jump encodes,
    /// bit-identical to that many `next_u64` calls.
    pub fn apply(&self, rng: &mut Xoshiro256pp) {
        rng.s = self.image(&rng.s);
    }

    fn identity() -> Jump {
        let mut cols = [[0u64; 4]; 256];
        for (j, col) in cols.iter_mut().enumerate() {
            col[j / 64] = 1u64 << (j % 64);
        }
        Jump { cols }
    }

    fn one_step() -> Jump {
        let mut m = Jump::identity();
        for col in m.cols.iter_mut() {
            transition(col);
        }
        m
    }

    /// `self · v`: XOR of the columns selected by the set bits of `v`.
    fn image(&self, v: &[u64; 4]) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (w, &word) in v.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let col = &self.cols[w * 64 + bits.trailing_zeros() as usize];
                out[0] ^= col[0];
                out[1] ^= col[1];
                out[2] ^= col[2];
                out[3] ^= col[3];
                bits &= bits - 1;
            }
        }
        out
    }

    /// `self · other` (apply `other` first, then `self`).
    fn compose(&self, other: &Jump) -> Jump {
        let mut cols = [[0u64; 4]; 256];
        for (out, col) in cols.iter_mut().zip(other.cols.iter()) {
            *out = self.image(col);
        }
        Jump { cols }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert!((0..100).all(|_| a.next_u64() == b.next_u64()));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn fork_streams_are_label_addressed_and_reproducible() {
        let child = |label: &str| {
            let mut parent = StdRng::seed_from_u64(123);
            let mut c = parent.fork(label);
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(child("die-0"), child("die-0"));
        assert_ne!(child("die-0"), child("die-1"));
    }

    #[test]
    fn fork_seed_reconstructs_the_forked_child() {
        // The parallel fan-out contract: shipping the 8-byte fork seed
        // to a worker and expanding it there is bit-identical to
        // forking inline, and advances the parent identically.
        let mut forking = StdRng::seed_from_u64(77);
        let mut seeding = StdRng::seed_from_u64(77);
        let mut child = forking.fork("die-3");
        let mut rebuilt = StdRng::seed_from_u64(seeding.fork_seed("die-3"));
        assert_eq!(forking.state(), seeding.state());
        assert!((0..16).all(|_| child.next_u64() == rebuilt.next_u64()));
    }

    #[test]
    fn fork_advances_parent_exactly_one_draw() {
        let mut forked = StdRng::seed_from_u64(5);
        let _ = forked.fork("x");
        let mut plain = StdRng::seed_from_u64(5);
        let _ = plain.next_u64();
        assert_eq!(forked.state(), plain.state());
    }

    #[test]
    fn sibling_draw_counts_do_not_interact() {
        // Consume wildly different amounts from the first child; the
        // second child's stream must be unchanged.
        let second_child = |first_child_draws: usize| {
            let mut parent = StdRng::seed_from_u64(9);
            let mut a = parent.fork("a");
            for _ in 0..first_child_draws {
                let _ = a.next_u64();
            }
            let mut b = parent.fork("b");
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(second_child(0), second_child(10_000));
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..37 {
            let _ = rng.next_u64();
        }
        let mut resumed = Xoshiro256pp::from_state(rng.state());
        assert!((0..10).all(|_| resumed.next_u64() == rng.next_u64()));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn jump_matches_sequential_stream() {
        // The jump matrix must land on the exact state `n` draws
        // reach, for every shape of n: zero, tiny, word-boundary,
        // chunk-sized, power-of-two and off-by-one around it.
        for &n in &[0u64, 1, 2, 3, 63, 64, 65, 127, 1000, 2048, 4095, 4096] {
            let mut stepped = StdRng::seed_from_u64(42);
            for _ in 0..n {
                let _ = stepped.next_u64();
            }
            let mut jumped = StdRng::seed_from_u64(42);
            Jump::by(n).apply(&mut jumped);
            assert_eq!(jumped.state(), stepped.state(), "n = {n}");
            assert_eq!(jumped.next_u64(), stepped.next_u64(), "n = {n}");
        }
    }

    #[test]
    fn advance_matches_sequential_stream() {
        // Both regimes of `advance`: the sequential small-n path and
        // the matrix path past the threshold.
        for &n in &[0u64, 5, 1000, 1 << 20] {
            let mut stepped = StdRng::seed_from_u64(7);
            for _ in 0..n {
                let _ = stepped.next_u64();
            }
            let mut jumped = StdRng::seed_from_u64(7);
            jumped.advance(n);
            assert_eq!(jumped.state(), stepped.state(), "n = {n}");
        }
    }

    #[test]
    fn jump_composes_additively() {
        // M^a then M^b must equal M^(a+b): jumps can be chained
        // chunk-by-chunk without drift.
        let mut chained = StdRng::seed_from_u64(11);
        let j = Jump::by(300);
        j.apply(&mut chained);
        j.apply(&mut chained);
        let mut direct = StdRng::seed_from_u64(11);
        Jump::by(600).apply(&mut direct);
        assert_eq!(chained.state(), direct.state());
    }

    #[test]
    fn splitmix_advance_matches_sequential_stream() {
        for &n in &[0u64, 1, 2, 100, 65_536] {
            let mut stepped = SplitMix64::seed_from_u64(13);
            for _ in 0..n {
                let _ = stepped.next_u64();
            }
            let mut jumped = SplitMix64::seed_from_u64(13);
            jumped.advance(n);
            assert_eq!(jumped, stepped, "n = {n}");
            assert_eq!(jumped.next_u64(), stepped.next_u64(), "n = {n}");
        }
    }
}
