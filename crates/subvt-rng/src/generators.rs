//! The core generators: splitmix64 for seeding (and throwaway
//! streams), xoshiro256++ for everything else.
//!
//! Both match the published reference implementations bit-for-bit; the
//! known-answer vectors live in `tests/kat.rs`.

use crate::Rng;

/// One step of the splitmix64 sequence: advances `state` and returns
/// the next output.
///
/// This is the standard state-expansion function used to turn a single
/// `u64` seed into arbitrarily many well-mixed words (Steele, Lea &
/// Flood's SplittableRandom finalizer).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 as a self-contained generator.
///
/// Used internally to expand seeds; also handy when a test needs a
/// tiny independent stream and the full 256-bit state of
/// [`Xoshiro256pp`] is overkill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose first output is `splitmix64(seed + γ)`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): the workspace's
/// general-purpose generator.
///
/// 256 bits of state, period 2²⁵⁶−1, passes BigCrush; the `++`
/// scrambler makes all 64 output bits full quality. Not
/// cryptographic — this is a simulation workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace-wide default generator.
///
/// Simulation and test code should say `StdRng` so the concrete choice
/// can evolve without touching call sites (the name also kept the
/// migration off the external `rand` crate mechanical).
pub type StdRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Expands one `u64` seed into a full state via [`splitmix64`], as
    /// the reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Builds a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one fixed point of the
    /// transition function).
    pub fn from_state(s: [u64; 4]) -> Xoshiro256pp {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Xoshiro256pp { s }
    }

    /// The raw state words (for checkpointing a long simulation).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert!((0..100).all(|_| a.next_u64() == b.next_u64()));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn fork_streams_are_label_addressed_and_reproducible() {
        let child = |label: &str| {
            let mut parent = StdRng::seed_from_u64(123);
            let mut c = parent.fork(label);
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(child("die-0"), child("die-0"));
        assert_ne!(child("die-0"), child("die-1"));
    }

    #[test]
    fn fork_seed_reconstructs_the_forked_child() {
        // The parallel fan-out contract: shipping the 8-byte fork seed
        // to a worker and expanding it there is bit-identical to
        // forking inline, and advances the parent identically.
        let mut forking = StdRng::seed_from_u64(77);
        let mut seeding = StdRng::seed_from_u64(77);
        let mut child = forking.fork("die-3");
        let mut rebuilt = StdRng::seed_from_u64(seeding.fork_seed("die-3"));
        assert_eq!(forking.state(), seeding.state());
        assert!((0..16).all(|_| child.next_u64() == rebuilt.next_u64()));
    }

    #[test]
    fn fork_advances_parent_exactly_one_draw() {
        let mut forked = StdRng::seed_from_u64(5);
        let _ = forked.fork("x");
        let mut plain = StdRng::seed_from_u64(5);
        let _ = plain.next_u64();
        assert_eq!(forked.state(), plain.state());
    }

    #[test]
    fn sibling_draw_counts_do_not_interact() {
        // Consume wildly different amounts from the first child; the
        // second child's stream must be unchanged.
        let second_child = |first_child_draws: usize| {
            let mut parent = StdRng::seed_from_u64(9);
            let mut a = parent.fork("a");
            for _ in 0..first_child_draws {
                let _ = a.next_u64();
            }
            let mut b = parent.fork("b");
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(second_child(0), second_child(10_000));
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..37 {
            let _ = rng.next_u64();
        }
        let mut resumed = Xoshiro256pp::from_state(rng.state());
        assert!((0..10).all(|_| resumed.next_u64() == rng.next_u64()));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }
}
