//! The distributions the variation and workload models draw from.

use crate::{Distribution, Rng, SampleUniform};

/// A normal (Gaussian) distribution.
///
/// Sampled by the Box–Muller transform using exactly two uniform draws
/// per sample, with no cached spare — statelessness keeps samples
/// independent of call history, which matters for reproducibility when
/// the same distribution value is shared across streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mean: f64, sigma: f64) -> Normal {
        assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
        Normal { mean, sigma }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; reject u1 == 0 to avoid ln(0).
        let mut u1 = rng.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.next_f64();
        }
        let u2 = rng.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.mean + self.sigma * mag * (std::f64::consts::TAU * u2).cos()
    }
}

/// A log-normal distribution: `exp(N(mu, sigma))`.
///
/// `mu`/`sigma` are the mean and standard deviation of the *underlying
/// normal* (the conventional parameterization), not of the log-normal
/// itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// A log-normal whose logarithm is `N(mu, sigma)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        LogNormal {
            norm: Normal::new(mu, sigma),
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// A uniform distribution over a half-open range `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: SampleUniform + Copy> Uniform<T> {
    /// A uniform distribution over `[lo, hi)`.
    ///
    /// Bounds are validated at sample time (the same checks as
    /// [`Rng::gen_range`]).
    pub fn new(lo: T, hi: T) -> Uniform<T> {
        Uniform { lo, hi }
    }
}

impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_in(rng, self.lo, self.hi)
    }
}

/// A Bernoulli (coin flip) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Bernoulli {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        Bernoulli { p }
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_f64() < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StdRng;

    #[test]
    #[should_panic(expected = "invalid sigma")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = Normal::new(3.5, 0.0);
        assert!((0..100).all(|_| n.sample(&mut rng) == 3.5));
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LogNormal::new(0.0, 1.5);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let never = Bernoulli::new(0.0);
        let always = Bernoulli::new(1.0);
        assert!((0..100).all(|_| !never.sample(&mut rng)));
        assert!((0..100).all(|_| always.sample(&mut rng)));
    }

    #[test]
    fn uniform_matches_gen_range() {
        use crate::Rng as _;
        let d = Uniform::new(10u32, 20);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), b.gen_range(10u32..20));
        }
    }
}
