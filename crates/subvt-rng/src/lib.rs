//! Deterministic, dependency-free random numbers for the subvt
//! workspace.
//!
//! A Monte-Carlo reproduction of a process-variation paper lives or
//! dies on controlled randomness: every yield figure, every convergence
//! claim, every energy statistic must be re-derivable from a seed.
//! This crate owns the whole chain in-tree — seeding, the core
//! generator, and the distributions — so results are bit-reproducible
//! across machines and the workspace builds with zero network access.
//!
//! * **Seeding** uses [`splitmix64`], the standard expander that turns
//!   one `u64` into a full, well-mixed generator state (and is itself a
//!   decent generator for throwaway streams).
//! * **The core generator** is [`Xoshiro256pp`] (xoshiro256++ of
//!   Blackman & Vigna), a 256-bit all-purpose generator with a 2²⁵⁶−1
//!   period. [`StdRng`] aliases it as the workspace-wide default.
//! * **Stream splitting**: [`Rng::fork`] derives an independent,
//!   label-addressed child stream from any generator, so each
//!   Monte-Carlo die or corner can own its own reproducible randomness
//!   regardless of how many draws its siblings consume.
//! * **Distributions**: [`Normal`], [`LogNormal`], [`Uniform`],
//!   [`Bernoulli`], plus the [`Standard`] unit distributions behind
//!   [`Rng::gen`].
//!
//! Both generators are verified against the published reference
//! vectors in `tests/kat.rs`, and the distributions against moment
//! checks in `tests/stats.rs`.

pub mod dist;
pub mod generators;

pub use dist::{Bernoulli, LogNormal, Normal, Uniform};
pub use generators::{splitmix64, Jump, SplitMix64, StdRng, Xoshiro256pp};

/// A source of random `u64`s plus the derived convenience draws.
///
/// The shape deliberately mirrors the `rand` trait the workspace
/// migrated from (`gen`, `gen_bool`, `gen_range`), so simulation code
/// keeps reading naturally: generic consumers take `R: Rng + ?Sized`
/// and work with any generator or `&mut` borrow of one.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: the low bits of some generators are
        // weaker, and 53 bits is all an f64 mantissa can hold.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value of the inferred type from its standard distribution
    /// (uniform over the type's range for integers, `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        self.next_f64() < p
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or non-finite for floats).
    fn gen_range<T>(&mut self, range: core::ops::Range<T>) -> T
    where
        T: SampleUniform,
    {
        T::sample_in(self, range.start, range.end)
    }

    /// Derives an independent child stream addressed by `label`,
    /// advancing `self` by exactly one draw.
    ///
    /// Children with different labels are decorrelated even when forked
    /// from the same parent state, and a child's draw count never
    /// perturbs the parent or any sibling — fork one stream per
    /// Monte-Carlo die/corner and each can consume however much
    /// randomness it needs without shifting anyone else's samples.
    /// The whole tree is reproducible from the root seed plus the fork
    /// labels.
    fn fork(&mut self, label: &str) -> generators::StdRng {
        generators::StdRng::seed_from_u64(self.fork_seed(label))
    }

    /// The seed [`Rng::fork`] would expand for `label`, advancing
    /// `self` by exactly one draw — `StdRng::seed_from_u64(seed)` then
    /// reproduces the forked child bit-for-bit.
    ///
    /// This is the raw material for *parallel* fan-out: a coordinator
    /// draws one 8-byte seed per die serially (cheap, order-fixed),
    /// ships the seeds to worker threads, and each worker expands its
    /// own independent stream — identical to forking inline in a
    /// serial loop.
    fn fork_seed(&mut self, label: &str) -> u64 {
        self.next_u64() ^ fnv1a64(label.as_bytes())
    }
}

/// FNV-1a, the classic 64-bit string hash — used to turn fork labels
/// into seed material, so speed and simplicity beat strength.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a primitive type: full-range uniform
/// for integers, `[0, 1)` for floats, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 mantissa bits from the top of the word.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // The high bit, for the same "prefer the top bits" reason as
        // the float draws.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// A uniform value in `[lo, hi)`.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// An unbiased uniform draw from `[0, span)` by rejection: reject the
/// (tiny) initial segment of the 2⁶⁴ space that would make `% span`
/// lopsided.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 2^64 mod span, computed in u64 arithmetic.
    let cutoff = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        if x >= cutoff {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                (lo as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(
                    lo < hi && (hi - lo).is_finite(),
                    "invalid float range {lo}..{hi}"
                );
                let u = rng.next_f64() as $t;
                let v = lo + u * (hi - lo);
                // `u < 1` exactly, but the scale-and-shift can round up
                // to `hi`; keep the interval half-open.
                if v < hi { v } else { hi.next_down().max(lo) }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_integers_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0..3);
            assert!(v < 3);
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let u: usize = rng.gen_range(10..11);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn gen_range_floats_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.12..1.3);
            assert!((0.12..1.3).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn trait_object_safety_through_mut_ref() {
        // Generic consumers take `R: Rng + ?Sized`; make sure `&mut`
        // re-borrows satisfy them the way `rand`'s did.
        fn consume<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let a = consume(&mut rng);
        let b = consume(&mut &mut rng);
        assert!(a != b, "stream must advance across borrows");
    }
}
