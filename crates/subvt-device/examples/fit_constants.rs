//! Calibration driver: fits the device models to their published/
//! representative delay anchors and prints the constants baked into
//! `Technology::st_130nm` and `Technology::generic_65nm`.

use subvt_device::calibration::{fit_delay_model, paper_delay_points, DelayPoint};
use subvt_device::technology::Technology;
use subvt_device::units::{Seconds, Volts};

fn main() {
    let fit = fit_delay_model(&Technology::st_130nm(), &paper_delay_points());
    println!(
        "st_130nm : slope={:.6} dibl={:.6} spec={:.6e} rms={:.2e}",
        fit.slope_factor, fit.dibl, fit.nmos_spec, fit.rms_relative_error
    );

    let anchors_65 = [
        DelayPoint {
            vdd: Volts(1.2),
            delay: Seconds::from_picos(40.0),
        },
        DelayPoint {
            vdd: Volts(0.6),
            delay: Seconds::from_picos(200.0),
        },
        DelayPoint {
            vdd: Volts(0.25),
            delay: Seconds::from_picos(25_000.0),
        },
    ];
    let fit65 = fit_delay_model(&Technology::generic_65nm(), &anchors_65);
    println!(
        "generic65: slope={:.6} dibl={:.6} spec={:.6e} rms={:.2e}",
        fit65.slope_factor, fit65.dibl, fit65.nmos_spec, fit65.rms_relative_error
    );
}
