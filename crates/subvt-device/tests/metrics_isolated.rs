//! Device-model counter accounting, in a process of its own.
//!
//! The metrics counters are global atomics, so unit tests can only
//! assert on before/after deltas that other threads may race. This
//! integration binary runs exactly one test and therefore sees the
//! counters from zero: it can pin the *absolute* bookkeeping of a
//! tabulated session — most importantly that a table build plus
//! in-grid queries performs **zero** analytic model evaluations.

use subvt_device::corner::ProcessCorner;
use subvt_device::delay::GateMismatch;
use subvt_device::energy::CircuitProfile;
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::{CachedEval, DeviceEval, TabulatedEval};
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::Volts;
use subvt_device::MetricsSnapshot;

#[test]
fn tabulated_session_performs_zero_analytic_evals() {
    let tech = Technology::st_130nm();
    assert_eq!(
        MetricsSnapshot::snapshot(),
        MetricsSnapshot::default(),
        "no device-model work may precede this test (single-test binary)"
    );

    // Building the surfaces samples raw device currents, which is not
    // an analytic delay/energy *evaluation* and must not count as one.
    let tab = TabulatedEval::new(&tech);
    let after_build = MetricsSnapshot::snapshot();
    assert_eq!(after_build.analytic_evals(), 0);
    assert_eq!(after_build.table_builds, 1);
    assert!(after_build.table_build_nanos > 0);

    // A spread of strictly in-grid queries: delays (single and fused
    // pair) and energies across corners and temperatures.
    let profile = CircuitProfile::ring_oscillator();
    let mm = GateMismatch {
        nmos_dvth: Volts(0.012),
        pmos_dvth: Volts(-0.009),
    };
    let mut expected_delay_hits = 0;
    let mut expected_energy_hits = 0;
    for corner in ProcessCorner::ALL {
        let env = Environment::at_corner(corner).with_celsius(37.0);
        for mv in [180.0, 266.25, 410.0] {
            let vdd = Volts::from_millivolts(mv);
            tab.gate_delay(GateKind::Nand2, vdd, env, mm, 1.0).unwrap();
            expected_delay_hits += 1;
            // The fused pair answers two queries from one interpolation
            // and accounts for both.
            tab.gate_delay_pair((GateKind::Inverter, GateKind::Nor2), vdd, env, mm, 1.0)
                .unwrap();
            expected_delay_hits += 2;
            tab.energy(&profile, vdd, env).unwrap();
            expected_energy_hits += 1;
        }
    }
    let after_queries = MetricsSnapshot::snapshot();
    assert_eq!(
        after_queries.analytic_evals(),
        0,
        "in-grid tabulated queries must never touch the analytic model"
    );
    assert_eq!(after_queries.exact_fallbacks, 0);
    assert_eq!(after_queries.interp_delay_hits, expected_delay_hits);
    assert_eq!(after_queries.interp_energy_hits, expected_energy_hits);

    // A memoizing wrapper on top: repeats are cache hits, not new
    // interpolations.
    let cached = CachedEval::new(&tab);
    let env = Environment::nominal();
    let v = Volts::from_millivolts(322.5);
    for _ in 0..3 {
        cached
            .gate_delay(GateKind::Inverter, v, env, mm, 1.0)
            .unwrap();
        cached
            .gate_delay_pair((GateKind::Inverter, GateKind::Nor2), v, env, mm, 1.0)
            .unwrap();
    }
    let after_cache = MetricsSnapshot::snapshot();
    assert_eq!(after_cache.analytic_evals(), 0);
    // First round: one single interp + one fused pair (two hits); the
    // pair's inverter leg reuses the single's cached entry only on
    // later rounds, so round one records 1 + 2 = 3 interp hits…
    assert_eq!(
        after_cache.interp_delay_hits,
        expected_delay_hits + 3,
        "repeat queries must be served by the cache"
    );
    // …and the two repeat rounds record two cache hits each (single +
    // pair counts both legs): 1 + 2 per round.
    assert_eq!(after_cache.cache_hits, 6);

    // One step off the grid: the exact fallback answers (correctly)
    // and the analytic counter finally moves — proving the counter was
    // live all along, not silently disconnected.
    let hot = Environment::at_corner(ProcessCorner::Tt).with_celsius(150.0);
    tab.gate_delay(GateKind::Inverter, v, hot, mm, 1.0).unwrap();
    let after_fallback = MetricsSnapshot::snapshot();
    assert_eq!(after_fallback.exact_fallbacks, 1);
    assert_eq!(after_fallback.analytic_delay_evals, 1);
}
