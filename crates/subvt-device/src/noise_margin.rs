//! Static noise margin and the minimum operational voltage.
//!
//! The technology's functional floor (`Technology::min_vdd`) is not an
//! arbitrary constant: static CMOS stops regenerating when the static
//! noise margin (SNM) of a cross-coupled inverter pair collapses under
//! threshold mismatch. This module derives the floor from the device
//! model — the mechanism behind the paper's observation that scaling
//! "further below Vopt may result in correct circuit operation" only
//! down to a point.
//!
//! Model: the butterfly-curve SNM of an inverter pair is approximated
//! from the inverter DC transfer characteristic computed with the EKV
//! currents (the voltage where pull-up and pull-down currents balance),
//! degraded by the per-gate threshold mismatch.

use crate::delay::GateMismatch;
use crate::mosfet::Environment;
use crate::technology::Technology;
use crate::units::Volts;

/// Computes the inverter switching threshold (the input voltage where
/// the output crosses Vdd/2) by bisection on the current balance.
///
/// # Panics
///
/// Panics if `vdd` is not positive.
pub fn switching_threshold(
    tech: &Technology,
    vdd: Volts,
    env: Environment,
    mismatch: GateMismatch,
) -> Volts {
    assert!(vdd.volts() > 0.0, "vdd must be positive");
    let half_out = Volts(vdd.volts() / 2.0);
    let imbalance = |vin: f64| -> f64 {
        // nMOS pulls down with Vgs = vin; pMOS pulls up with
        // Vsg = vdd − vin; both see |Vds| = vdd/2 at the crossing.
        let i_n = tech
            .nmos
            .drain_current(Volts(vin), half_out, env, mismatch.nmos_dvth)
            .value();
        let i_p = tech
            .pmos
            .drain_current(Volts(vdd.volts() - vin), half_out, env, mismatch.pmos_dvth)
            .value();
        i_n - i_p
    };
    let (mut lo, mut hi) = (0.0, vdd.volts());
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if imbalance(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Volts(0.5 * (lo + hi))
}

/// First-order static noise margin of a cross-coupled pair: the
/// distance from the switching threshold to the nearer rail, reduced by
/// the input-referred effect of the pair's threshold mismatch.
pub fn static_noise_margin(
    tech: &Technology,
    vdd: Volts,
    env: Environment,
    mismatch: GateMismatch,
) -> Volts {
    let vm = switching_threshold(tech, vdd, env, GateMismatch::NOMINAL);
    let headroom = vm.volts().min(vdd.volts() - vm.volts());
    // Mismatch between the two inverters of the pair shifts the two
    // thresholds apart; worst case eats directly into the margin.
    let mismatch_v = mismatch
        .nmos_dvth
        .volts()
        .abs()
        .max(mismatch.pmos_dvth.volts().abs());
    Volts((headroom - mismatch_v).max(0.0))
}

/// The minimum supply at which the SNM stays above `required_margin`
/// for a `sigma_bound`-σ mismatch pair — the physics behind the
/// technology's `min_vdd`.
///
/// Returns `None` if no voltage up to 1.2 V achieves the margin.
pub fn minimum_operational_vdd(
    tech: &Technology,
    env: Environment,
    local_sigma: Volts,
    sigma_bound: f64,
    required_margin_fraction: f64,
) -> Option<Volts> {
    let mismatch = GateMismatch {
        nmos_dvth: Volts(local_sigma.volts() * sigma_bound),
        pmos_dvth: Volts(-local_sigma.volts() * sigma_bound),
    };
    let mut lo = 0.02;
    let mut hi = 1.2;
    let ok = |v: f64| -> bool {
        let snm = static_noise_margin(tech, Volts(v), env, mismatch);
        snm.volts() >= required_margin_fraction * v
    };
    if !ok(hi) {
        return None;
    }
    if ok(lo) {
        return Some(Volts(lo));
    }
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(Volts(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Technology, Environment) {
        (Technology::st_130nm(), Environment::nominal())
    }

    #[test]
    fn switching_threshold_is_near_midrail() {
        let (tech, env) = fixture();
        for vdd in [0.2, 0.4, 0.8, 1.2] {
            let vm = switching_threshold(&tech, Volts(vdd), env, GateMismatch::NOMINAL);
            let frac = vm.volts() / vdd;
            assert!((0.3..0.7).contains(&frac), "{vdd} V: Vm/Vdd = {frac}");
        }
    }

    #[test]
    fn nmos_mismatch_moves_the_threshold() {
        let (tech, env) = fixture();
        let vdd = Volts(0.3);
        let nominal = switching_threshold(&tech, vdd, env, GateMismatch::NOMINAL);
        let strong_n = switching_threshold(
            &tech,
            vdd,
            env,
            GateMismatch {
                nmos_dvth: Volts(-0.03), // stronger nMOS
                pmos_dvth: Volts::ZERO,
            },
        );
        assert!(
            strong_n.volts() < nominal.volts(),
            "a stronger pull-down lowers Vm: {strong_n} vs {nominal}"
        );
    }

    #[test]
    fn snm_shrinks_with_vdd() {
        let (tech, env) = fixture();
        let m = GateMismatch::NOMINAL;
        let high = static_noise_margin(&tech, Volts(0.6), env, m);
        let low = static_noise_margin(&tech, Volts(0.15), env, m);
        assert!(high.volts() > 2.0 * low.volts(), "high {high} low {low}");
    }

    #[test]
    fn mismatch_eats_the_margin() {
        let (tech, env) = fixture();
        let vdd = Volts(0.2);
        let clean = static_noise_margin(&tech, vdd, env, GateMismatch::NOMINAL);
        let shaky = static_noise_margin(
            &tech,
            vdd,
            env,
            GateMismatch {
                nmos_dvth: Volts(0.04),
                pmos_dvth: Volts(-0.04),
            },
        );
        assert!(shaky.volts() < clean.volts() - 0.03);
    }

    #[test]
    fn derived_floor_matches_the_technology_constant() {
        // The hand-set Technology::min_vdd (100 mV) should be
        // consistent with a 3σ SNM requirement of ~20 % of Vdd.
        let (tech, env) = fixture();
        let vmin = minimum_operational_vdd(&tech, env, Volts(0.012), 3.0, 0.2).expect("achievable");
        assert!(
            (0.06..0.20).contains(&vmin.volts()),
            "derived Vmin {} vs constant {}",
            vmin,
            tech.min_vdd
        );
    }

    #[test]
    fn impossible_margin_returns_none() {
        let (tech, env) = fixture();
        // Demanding SNM > 45 % of Vdd with huge mismatch: unreachable.
        let v = minimum_operational_vdd(&tech, env, Volts(0.2), 3.0, 0.45);
        assert_eq!(v, None);
    }

    #[test]
    fn tighter_margin_requires_higher_vdd() {
        let (tech, env) = fixture();
        let loose = minimum_operational_vdd(&tech, env, Volts(0.012), 3.0, 0.10).unwrap();
        let tight = minimum_operational_vdd(&tech, env, Volts(0.012), 3.0, 0.30).unwrap();
        assert!(tight.volts() > loose.volts(), "loose {loose} tight {tight}");
    }

    #[test]
    fn bigger_devices_lower_the_floor() {
        // Pelgrom: upsizing shrinks σ, so the same yield target needs
        // less supply — the sizing/Vmin interaction.
        let (tech, env) = fixture();
        let small = minimum_operational_vdd(&tech, env, Volts(0.012), 3.0, 0.2).unwrap();
        let big = minimum_operational_vdd(&tech, env, Volts(0.006), 3.0, 0.2).unwrap();
        assert!(big.volts() < small.volts());
    }
}
