//! Variation-driven device sizing — the design-time mitigation the
//! paper cites as references \[5\]/\[7\] (Kwong & Chandrakasan, ISLPED'06;
//! Zhai et al., ISLPED'05).
//!
//! Upsizing a subthreshold gate buys mismatch immunity (Pelgrom:
//! σ(ΔVth) ∝ 1/√(W·L)) and drive at the price of switched capacitance
//! and leakage width. This module quantifies that trade so the
//! ablations can show why *runtime* adaptation (the paper's approach)
//! complements rather than replaces sizing.

use crate::energy::CircuitProfile;
use crate::mosfet::Environment;
use crate::optimize::golden_section;
use crate::technology::Technology;
use crate::units::{Joules, Volts};

/// A candidate sizing point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingPoint {
    /// Upsizing factor relative to minimum size (≥ 1).
    pub upsize: f64,
    /// Energy per operation at the sizing's own MEP.
    pub mep_energy: Joules,
    /// The MEP supply voltage for this sizing.
    pub vopt: Volts,
    /// Local-mismatch σ relative to minimum size (= 1/√upsize).
    pub relative_sigma: f64,
    /// Worst-case energy when the die sits 3σ slow and the supply
    /// cannot adapt (the guard-band cost sizing is meant to cover).
    pub guardband_energy: Joules,
}

/// How upsizing scales the electrical profile.
fn resized(profile: &CircuitProfile, upsize: f64) -> CircuitProfile {
    let mut p = profile.clone();
    // Switched capacitance and leakage width scale with W.
    p.cap_scale *= upsize;
    p.leak_scale *= upsize;
    p
}

/// Evaluates a sizing sweep for `profile` in `env`.
///
/// For each upsizing factor the circuit's own MEP is located, and a
/// "no-controller" guard-band cost is computed: a 3σ-slow die (σ
/// shrinking with √upsize from `sigma_min`) must still meet the
/// minimum-size circuit's MEP-speed, so the fixed supply is raised by
/// the residual 3σ threshold shift, and the energy there is charged.
///
/// # Panics
///
/// Panics if `upsizes` is empty or contains a factor below 1.
pub fn sizing_sweep(
    tech: &Technology,
    profile: &CircuitProfile,
    env: Environment,
    sigma_min: Volts,
    upsizes: &[f64],
) -> Vec<SizingPoint> {
    assert!(!upsizes.is_empty(), "need at least one sizing factor");
    upsizes
        .iter()
        .map(|&upsize| {
            assert!(upsize >= 1.0, "upsizing factor {upsize} below minimum size");
            let p = resized(profile, upsize);
            let m = golden_section(
                |v| {
                    crate::energy::energy_per_cycle(tech, &p, Volts(v), env)
                        .map(|e| e.total().value())
                        .unwrap_or(f64::INFINITY)
                },
                0.12,
                0.6,
                1e-6,
            );
            let relative_sigma = 1.0 / upsize.sqrt();
            // Guard band: raise the supply by the residual 3σ shift (a
            // slow die needs that much more Vdd for the same speed in
            // the exponential regime).
            let guard = 3.0 * sigma_min.volts() * relative_sigma;
            let guard_v = Volts((m.x + guard).min(0.9));
            let guardband_energy = crate::energy::energy_per_cycle(tech, &p, guard_v, env)
                .map(|e| e.total())
                .unwrap_or(Joules(f64::INFINITY));
            SizingPoint {
                upsize,
                mep_energy: Joules(m.value),
                vopt: Volts(m.x),
                relative_sigma,
                guardband_energy,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<SizingPoint> {
        sizing_sweep(
            &Technology::st_130nm(),
            &CircuitProfile::ring_oscillator(),
            Environment::nominal(),
            Volts(0.012),
            &[1.0, 2.0, 4.0, 8.0],
        )
    }

    #[test]
    fn upsizing_raises_mep_energy() {
        let points = sweep();
        for pair in points.windows(2) {
            assert!(
                pair[1].mep_energy.value() > pair[0].mep_energy.value(),
                "bigger devices must burn more at their MEP"
            );
        }
    }

    #[test]
    fn upsizing_shrinks_mismatch() {
        let points = sweep();
        assert!((points[0].relative_sigma - 1.0).abs() < 1e-12);
        assert!((points[3].relative_sigma - 1.0 / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn guardband_energy_exceeds_mep_energy() {
        for p in sweep() {
            assert!(p.guardband_energy.value() > p.mep_energy.value());
        }
    }

    #[test]
    fn moderate_upsizing_can_beat_minimum_size_under_guardband() {
        // The sizing papers' observation: with a guard band, some
        // upsizing wins because the mismatch guard shrinks faster than
        // the capacitance grows — up to a point.
        let points = sweep();
        let overhead = |p: &SizingPoint| p.guardband_energy.value() / p.mep_energy.value();
        // Guard-band *relative* overhead must fall with upsizing.
        assert!(overhead(&points[3]) < overhead(&points[0]));
    }

    #[test]
    fn mep_voltage_stays_subthreshold_across_sizings() {
        for p in sweep() {
            assert!(p.vopt.volts() < 0.3, "upsize {}: {}", p.upsize, p.vopt);
        }
    }

    #[test]
    #[should_panic(expected = "below minimum size")]
    fn downsizing_rejected() {
        let _ = sizing_sweep(
            &Technology::st_130nm(),
            &CircuitProfile::ring_oscillator(),
            Environment::nominal(),
            Volts(0.012),
            &[0.5],
        );
    }
}
