//! Gate-delay model: the CV/I metric on top of the EKV currents.
//!
//! Reproduces the paper's Fig. 3 (delay vs supply voltage per process
//! corner, five decades on a log axis) and the published inverter
//! delays used to calibrate the TDC: 102 ps @ 1.2 V, 442 ps @ 0.6 V and
//! 79 430 ps @ 0.2 V at the typical corner.

use std::fmt;

use crate::mosfet::Environment;
use crate::technology::{GateKind, Technology};
use crate::units::{Seconds, Volts};

/// Error returned when a delay/energy query is made below the
/// technology's functional supply floor.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplyRangeError {
    vdd: Volts,
    min_vdd: Volts,
}

impl SupplyRangeError {
    /// Constructs the error (crate-internal; evaluators in
    /// [`crate::tabulate`] raise it without going through
    /// [`GateTiming`]).
    pub(crate) fn new(vdd: Volts, min_vdd: Volts) -> SupplyRangeError {
        SupplyRangeError { vdd, min_vdd }
    }

    /// The offending supply voltage.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }
}

impl fmt::Display for SupplyRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "supply voltage {} is below the functional floor {} of the technology",
            self.vdd, self.min_vdd
        )
    }
}

impl std::error::Error for SupplyRangeError {}

/// Per-instance threshold mismatch of the pull-down / pull-up networks.
///
/// Zero for a nominal gate; sampled by [`crate::variation`] for Monte
/// Carlo analysis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateMismatch {
    /// Local nMOS threshold shift.
    pub nmos_dvth: Volts,
    /// Local pMOS threshold shift.
    pub pmos_dvth: Volts,
}

impl GateMismatch {
    /// A perfectly nominal gate.
    pub const NOMINAL: GateMismatch = GateMismatch {
        nmos_dvth: Volts(0.0),
        pmos_dvth: Volts(0.0),
    };
}

/// Gate-level timing queries against a [`Technology`].
#[derive(Debug, Clone, Copy)]
pub struct GateTiming<'a> {
    tech: &'a Technology,
}

impl<'a> GateTiming<'a> {
    /// Creates a timing view of a technology.
    pub fn new(tech: &'a Technology) -> GateTiming<'a> {
        GateTiming { tech }
    }

    /// The underlying technology.
    pub fn technology(&self) -> &'a Technology {
        self.tech
    }

    /// Propagation delay of `kind` at `vdd` in `env`, for a nominal
    /// device, with a fanout-of-1 load.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] when `vdd` is below the functional
    /// floor of the technology.
    ///
    /// ```
    /// # use subvt_device::delay::GateTiming;
    /// # use subvt_device::technology::{Technology, GateKind};
    /// # use subvt_device::mosfet::Environment;
    /// # use subvt_device::units::Volts;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let tech = Technology::st_130nm();
    /// let timing = GateTiming::new(&tech);
    /// let d = timing.gate_delay(GateKind::Inverter, Volts(1.2), Environment::nominal())?;
    /// assert!((d.picos() - 102.0).abs() / 102.0 < 0.05);
    /// # Ok(())
    /// # }
    /// ```
    pub fn gate_delay(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        self.gate_delay_with(kind, vdd, env, GateMismatch::NOMINAL, 1.0)
    }

    /// Propagation delay with explicit local mismatch and fanout.
    ///
    /// The delay is the average of the pull-up and pull-down
    /// transitions, each modelled as `delay_fit · C_load · Vdd / I_on`.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] when `vdd` is below the functional
    /// floor of the technology.
    pub fn gate_delay_with(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<Seconds, SupplyRangeError> {
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError {
                vdd,
                min_vdd: self.tech.min_vdd,
            });
        }
        crate::metrics::record_analytic_delay();
        let cap = self.tech.gate_cap.value() * kind.cap_factor() * fanout.max(0.0);
        let (n_stack, p_stack) = kind.stack_factors();
        let i_n = self
            .tech
            .nmos
            .on_current(vdd, env, mismatch.nmos_dvth)
            .value()
            * n_stack;
        let i_p = self
            .tech
            .pmos
            .on_current(vdd, env, mismatch.pmos_dvth)
            .value()
            * p_stack;
        let charge = self.tech.delay_fit * cap * vdd.volts();
        let t_fall = charge / i_n;
        let t_rise = charge / i_p;
        Ok(Seconds(0.5 * (t_fall + t_rise)))
    }

    /// Delay of a chain of `stages` identical gates (e.g. a delay
    /// replica or one half-period of a ring oscillator).
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] when `vdd` is below the functional
    /// floor of the technology.
    pub fn chain_delay(
        &self,
        kind: GateKind,
        stages: usize,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        Ok(self.gate_delay(kind, vdd, env)? * stages as f64)
    }

    /// The paper's TDC "single delay cell": one inverter plus one NOR
    /// gate in series.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] when `vdd` is below the functional
    /// floor of the technology.
    pub fn inv_nor_cell_delay(
        &self,
        vdd: Volts,
        env: Environment,
    ) -> Result<Seconds, SupplyRangeError> {
        let inv = self.gate_delay(GateKind::Inverter, vdd, env)?;
        let nor = self.gate_delay(GateKind::Nor2, vdd, env)?;
        Ok(inv + nor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;

    fn timing_fixture() -> Technology {
        Technology::st_130nm()
    }

    #[test]
    fn calibrated_inverter_delay_points() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let targets = [(1.2, 102.0), (0.6, 442.0), (0.2, 79_430.0)];
        for (vdd, ps) in targets {
            let d = timing
                .gate_delay(GateKind::Inverter, Volts(vdd), env)
                .expect("within range");
            let rel = (d.picos() - ps).abs() / ps;
            assert!(rel < 0.05, "at {vdd} V: {} ps vs target {ps} ps", d.picos());
        }
    }

    #[test]
    fn delay_monotone_decreasing_in_vdd() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let mut last = f64::INFINITY;
        for mv in (100..=1200).step_by(20) {
            let d = timing
                .gate_delay(
                    GateKind::Inverter,
                    Volts::from_millivolts(f64::from(mv)),
                    env,
                )
                .expect("within range")
                .value();
            assert!(d < last, "delay rose at {mv} mV");
            last = d;
        }
    }

    #[test]
    fn slow_corner_is_slower() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let v = Volts(0.3);
        let d_tt = timing
            .gate_delay(GateKind::Inverter, v, Environment::nominal())
            .unwrap();
        let d_ss = timing
            .gate_delay(
                GateKind::Inverter,
                v,
                Environment::at_corner(ProcessCorner::Ss),
            )
            .unwrap();
        let d_ff = timing
            .gate_delay(
                GateKind::Inverter,
                v,
                Environment::at_corner(ProcessCorner::Ff),
            )
            .unwrap();
        assert!(d_ss.value() > d_tt.value());
        assert!(d_ff.value() < d_tt.value());
    }

    #[test]
    fn ten_percent_vdd_shift_moves_subthreshold_delay_strongly() {
        // Paper Sec. II: a 10 % Vdd variation causes up to ~30 % delay
        // change in the subthreshold region.
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let d0 = timing
            .gate_delay(GateKind::Inverter, Volts(0.25), env)
            .unwrap()
            .value();
        let d1 = timing
            .gate_delay(GateKind::Inverter, Volts(0.25 * 0.9), env)
            .unwrap()
            .value();
        let change = (d1 - d0) / d0;
        assert!(change > 0.25, "delay change {change}");
    }

    #[test]
    fn heat_speeds_up_subthreshold_logic() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let v = Volts(0.25);
        let d_cold = timing
            .gate_delay(GateKind::Inverter, v, Environment::at_celsius(25.0))
            .unwrap();
        let d_hot = timing
            .gate_delay(GateKind::Inverter, v, Environment::at_celsius(85.0))
            .unwrap();
        assert!(d_hot.value() < d_cold.value());
    }

    #[test]
    fn below_floor_is_an_error() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let err = timing
            .gate_delay(GateKind::Inverter, Volts(0.05), Environment::nominal())
            .unwrap_err();
        assert_eq!(err.vdd(), Volts(0.05));
        assert!(err.to_string().contains("functional floor"));
    }

    #[test]
    fn stacked_gates_are_slower_than_inverter() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let v = Volts(0.3);
        let inv = timing.gate_delay(GateKind::Inverter, v, env).unwrap();
        let nand = timing.gate_delay(GateKind::Nand2, v, env).unwrap();
        let nor = timing.gate_delay(GateKind::Nor2, v, env).unwrap();
        assert!(nand.value() > inv.value());
        assert!(nor.value() > inv.value());
    }

    #[test]
    fn chain_delay_scales_linearly() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let one = timing
            .chain_delay(GateKind::Inverter, 1, Volts(0.5), env)
            .unwrap();
        let ten = timing
            .chain_delay(GateKind::Inverter, 10, Volts(0.5), env)
            .unwrap();
        assert!((ten.value() / one.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mismatch_slows_one_edge() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let v = Volts(0.25);
        let nominal = timing
            .gate_delay_with(GateKind::Inverter, v, env, GateMismatch::NOMINAL, 1.0)
            .unwrap();
        let slowed = timing
            .gate_delay_with(
                GateKind::Inverter,
                v,
                env,
                GateMismatch {
                    nmos_dvth: Volts(0.03),
                    pmos_dvth: Volts::ZERO,
                },
                1.0,
            )
            .unwrap();
        assert!(slowed.value() > nominal.value());
    }

    #[test]
    fn fanout_scales_delay() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let v = Volts(0.6);
        let fo1 = timing
            .gate_delay_with(GateKind::Inverter, v, env, GateMismatch::NOMINAL, 1.0)
            .unwrap();
        let fo4 = timing
            .gate_delay_with(GateKind::Inverter, v, env, GateMismatch::NOMINAL, 4.0)
            .unwrap();
        assert!((fo4.value() / fo1.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn inv_nor_cell_exceeds_inverter_alone() {
        let tech = timing_fixture();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        let v = Volts(0.6);
        let cell = timing.inv_nor_cell_delay(v, env).unwrap();
        let inv = timing.gate_delay(GateKind::Inverter, v, env).unwrap();
        assert!(cell.value() > inv.value());
    }
}
