//! Calibration of the analytic models against the paper's published
//! silicon numbers.
//!
//! Two fits are provided:
//!
//! * [`fit_delay_model`] — fits the EKV slope factor, DIBL coefficient
//!   and drive scale so the inverter delay hits the paper's three
//!   published points (102 ps @ 1.2 V, 442 ps @ 0.6 V, 79 430 ps
//!   @ 0.2 V). The resulting constants are baked into
//!   [`Technology::st_130nm`] and the regression test here keeps them
//!   honest.
//! * [`fit_energy_profile`] — fits a circuit profile's capacitance and
//!   leakage scales so its minimum-energy point lands on a published
//!   (Vopt, Emin) target, used per process corner for Fig. 1 and per
//!   temperature for Fig. 2.

use crate::delay::GateTiming;
use crate::energy::CircuitProfile;
use crate::mep::find_mep;
use crate::mosfet::Environment;
use crate::optimize::{nelder_mead, NelderMeadOptions};
use crate::technology::{GateKind, Technology};
use crate::units::{Joules, Seconds, Volts};

/// One published delay point: the inverter delay at a supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPoint {
    /// Supply voltage of the measurement.
    pub vdd: Volts,
    /// Published inverter delay.
    pub delay: Seconds,
}

/// The paper's three published inverter delays (Sec. II-A, typical
/// corner, 25 °C).
pub fn paper_delay_points() -> [DelayPoint; 3] {
    [
        DelayPoint {
            vdd: Volts(1.2),
            delay: Seconds::from_picos(102.0),
        },
        DelayPoint {
            vdd: Volts(0.6),
            delay: Seconds::from_picos(442.0),
        },
        DelayPoint {
            vdd: Volts(0.2),
            delay: Seconds::from_picos(79_430.0),
        },
    ]
}

/// Result of a delay-model fit.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayFit {
    /// Fitted subthreshold slope factor `n`.
    pub slope_factor: f64,
    /// Fitted DIBL coefficient.
    pub dibl: f64,
    /// Fitted nMOS specific current (A); the pMOS current keeps the
    /// technology's n/p ratio.
    pub nmos_spec: f64,
    /// Root-mean-square relative delay error over the target points.
    pub rms_relative_error: f64,
    /// Technology with the fit applied.
    pub technology: Technology,
}

fn apply_delay_params(tech: &mut Technology, slope: f64, dibl: f64, nmos_spec: f64) {
    let ratio = tech.pmos.spec_current.value() * tech.pmos.width_ratio
        / (tech.nmos.spec_current.value() * tech.nmos.width_ratio);
    tech.nmos.slope_factor = slope;
    tech.pmos.slope_factor = slope + 0.02;
    tech.nmos.dibl = dibl;
    tech.pmos.dibl = dibl;
    tech.nmos.spec_current = crate::units::Amps(nmos_spec);
    tech.pmos.spec_current =
        crate::units::Amps(nmos_spec * ratio * tech.nmos.width_ratio / tech.pmos.width_ratio);
}

/// Fits the delay model of `base` to the given delay points by
/// Nelder-Mead on the squared log-delay residuals.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn fit_delay_model(base: &Technology, points: &[DelayPoint]) -> DelayFit {
    assert!(!points.is_empty(), "need at least one delay target");
    let env = Environment::nominal();
    let objective = |x: &[f64]| -> f64 {
        let (slope, dibl, log_spec) = (x[0], x[1], x[2]);
        if !(1.0..=2.5).contains(&slope) || !(0.0..=0.3).contains(&dibl) {
            return f64::INFINITY;
        }
        let mut tech = base.clone();
        apply_delay_params(&mut tech, slope, dibl, log_spec.exp());
        let timing = GateTiming::new(&tech);
        points
            .iter()
            .map(
                |p| match timing.gate_delay(GateKind::Inverter, p.vdd, env) {
                    Ok(d) => {
                        let r = (d.value() / p.delay.value()).ln();
                        r * r
                    }
                    Err(_) => f64::INFINITY,
                },
            )
            .sum()
    };
    let start = [
        base.nmos.slope_factor,
        base.nmos.dibl.max(0.01),
        base.nmos.spec_current.value().ln(),
    ];
    let opts = NelderMeadOptions {
        max_evals: 40_000,
        f_tol: 1e-16,
        initial_scale: 0.15,
    };
    let m = nelder_mead(objective, &start, opts);

    let mut tech = base.clone();
    apply_delay_params(&mut tech, m.x[0], m.x[1], m.x[2].exp());
    let timing = GateTiming::new(&tech);
    let mse: f64 = points
        .iter()
        .map(|p| {
            let d = timing
                .gate_delay(GateKind::Inverter, p.vdd, env)
                .map(|d| d.value())
                .unwrap_or(f64::INFINITY);
            let r = d / p.delay.value() - 1.0;
            r * r
        })
        .sum::<f64>()
        / points.len() as f64;

    DelayFit {
        slope_factor: m.x[0],
        dibl: m.x[1],
        nmos_spec: m.x[2].exp(),
        rms_relative_error: mse.sqrt(),
        technology: tech,
    }
}

/// A published minimum-energy-point target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MepTarget {
    /// Published optimal supply voltage.
    pub vopt: Volts,
    /// Published energy per operation at the optimum.
    pub energy: Joules,
}

/// Result of an energy-profile fit.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyFit {
    /// Fitted dynamic-capacitance scale.
    pub cap_scale: f64,
    /// Fitted leakage scale.
    pub leak_scale: f64,
    /// Relative error on the fitted Vopt.
    pub vopt_error: f64,
    /// Relative error on the fitted minimum energy.
    pub energy_error: f64,
}

/// Fits `(cap_scale, leak_scale)` of `profile` so that its MEP in `env`
/// lands on `target`. The search range for the optimum voltage is
/// `[v_lo, v_hi]`.
///
/// The fit is exact up to solver tolerance because the two knobs map
/// one-to-one onto the two targets: the leak/cap ratio positions Vopt
/// and the absolute scale positions Emin.
pub fn fit_energy_profile(
    tech: &Technology,
    profile: &CircuitProfile,
    env: Environment,
    target: MepTarget,
    v_lo: Volts,
    v_hi: Volts,
) -> EnergyFit {
    let objective = |x: &[f64]| -> f64 {
        let (log_cap, log_leak) = (x[0], x[1]);
        let mut p = profile.clone();
        p.cap_scale = log_cap.exp();
        p.leak_scale = log_leak.exp();
        match find_mep(tech, &p, env, v_lo, v_hi) {
            Ok(mep) => {
                let ev = (mep.vopt.volts() / target.vopt.volts()).ln();
                let ee = (mep.energy.value() / target.energy.value()).ln();
                ev * ev + ee * ee
            }
            Err(_) => f64::INFINITY,
        }
    };
    let start = [profile.cap_scale.ln(), profile.leak_scale.ln()];
    let opts = NelderMeadOptions {
        max_evals: 20_000,
        f_tol: 1e-16,
        initial_scale: 0.4,
    };
    let m = nelder_mead(objective, &start, opts);

    let mut fitted = profile.clone();
    fitted.cap_scale = m.x[0].exp();
    fitted.leak_scale = m.x[1].exp();
    let mep = find_mep(tech, &fitted, env, v_lo, v_hi).expect("fit produced invalid profile");
    EnergyFit {
        cap_scale: fitted.cap_scale,
        leak_scale: fitted.leak_scale,
        vopt_error: (mep.vopt.volts() - target.vopt.volts()).abs() / target.vopt.volts(),
        energy_error: (mep.energy.value() - target.energy.value()).abs() / target.energy.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::{CALIBRATED_DIBL, CALIBRATED_NMOS_SPEC, CALIBRATED_SLOPE_FACTOR};

    #[test]
    fn delay_fit_reaches_published_points() {
        let fit = fit_delay_model(&Technology::st_130nm(), &paper_delay_points());
        assert!(
            fit.rms_relative_error < 0.05,
            "rms error {}",
            fit.rms_relative_error
        );
    }

    #[test]
    fn baked_constants_match_a_fresh_fit() {
        // The constants hard-coded in Technology::st_130nm must agree
        // with what the calibrator reproduces from the paper's numbers.
        let fit = fit_delay_model(&Technology::st_130nm(), &paper_delay_points());
        assert!(
            (fit.slope_factor - CALIBRATED_SLOPE_FACTOR).abs() < 0.05,
            "slope {} vs baked {}",
            fit.slope_factor,
            CALIBRATED_SLOPE_FACTOR
        );
        assert!(
            (fit.dibl - CALIBRATED_DIBL).abs() < 0.05,
            "dibl {} vs baked {}",
            fit.dibl,
            CALIBRATED_DIBL
        );
        let ratio = fit.nmos_spec / CALIBRATED_NMOS_SPEC;
        assert!((0.5..2.0).contains(&ratio), "spec ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one delay target")]
    fn delay_fit_rejects_empty_targets() {
        let _ = fit_delay_model(&Technology::st_130nm(), &[]);
    }

    #[test]
    fn energy_fit_hits_typical_corner_target() {
        let tech = Technology::st_130nm();
        let profile = CircuitProfile::ring_oscillator_uncalibrated();
        let target = MepTarget {
            vopt: Volts(0.200),
            energy: Joules::from_femtos(2.65),
        };
        let fit = fit_energy_profile(
            &tech,
            &profile,
            Environment::nominal(),
            target,
            Volts(0.12),
            Volts(0.6),
        );
        assert!(fit.vopt_error < 0.02, "vopt error {}", fit.vopt_error);
        assert!(fit.energy_error < 0.02, "energy error {}", fit.energy_error);
    }
}
