//! Process corners of the 0.13 µm CMOS process.
//!
//! The paper (Sec. II) simulates slow (SS), typical (TT), fast (FF) and
//! mixed fast-slow (FS) corners, with an nMOS threshold voltage of
//! 302 mV (SS), 287 mV (TT) and 272 mV (FF) — a ±15 mV global shift that
//! "can vary up to 10 %".

use std::fmt;
use std::str::FromStr;

use crate::units::Volts;

/// A named global process corner.
///
/// The first letter refers to the nMOS device, the second to the pMOS
/// device (`Fs` = fast nMOS, slow pMOS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Slow nMOS, slow pMOS.
    Ss,
    /// Typical nMOS, typical pMOS (nominal).
    #[default]
    Tt,
    /// Fast nMOS, fast pMOS.
    Ff,
    /// Fast nMOS, slow pMOS.
    Fs,
    /// Slow nMOS, fast pMOS.
    Sf,
}

/// The global threshold-voltage shift of a "slow" device relative to
/// typical: 302 mV − 287 mV = +15 mV (paper Sec. II).
pub const CORNER_VTH_SHIFT: Volts = Volts(0.015);

impl ProcessCorner {
    /// All corners the paper's Fig. 1 and Fig. 3 sweep, in the plotted
    /// order.
    pub const FIGURE_CORNERS: [ProcessCorner; 3] =
        [ProcessCorner::Ss, ProcessCorner::Tt, ProcessCorner::Fs];

    /// Every modelled corner.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::Ss,
        ProcessCorner::Tt,
        ProcessCorner::Ff,
        ProcessCorner::Fs,
        ProcessCorner::Sf,
    ];

    /// Threshold-voltage shift of the nMOS device relative to typical.
    ///
    /// ```
    /// # use subvt_device::corner::ProcessCorner;
    /// assert!(ProcessCorner::Ss.nmos_vth_shift().volts() > 0.0);
    /// assert!(ProcessCorner::Fs.nmos_vth_shift().volts() < 0.0);
    /// ```
    #[inline]
    pub fn nmos_vth_shift(self) -> Volts {
        match self {
            ProcessCorner::Ss | ProcessCorner::Sf => CORNER_VTH_SHIFT,
            ProcessCorner::Tt => Volts::ZERO,
            ProcessCorner::Ff | ProcessCorner::Fs => -CORNER_VTH_SHIFT,
        }
    }

    /// Threshold-voltage shift of the pMOS device relative to typical.
    #[inline]
    pub fn pmos_vth_shift(self) -> Volts {
        match self {
            ProcessCorner::Ss | ProcessCorner::Fs => CORNER_VTH_SHIFT,
            ProcessCorner::Tt => Volts::ZERO,
            ProcessCorner::Ff | ProcessCorner::Sf => -CORNER_VTH_SHIFT,
        }
    }

    /// True for the corners where both devices shift the same way.
    #[inline]
    pub fn is_symmetric(self) -> bool {
        matches!(
            self,
            ProcessCorner::Ss | ProcessCorner::Tt | ProcessCorner::Ff
        )
    }

    /// Short uppercase name as used in the paper's figures.
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            ProcessCorner::Ss => "SS",
            ProcessCorner::Tt => "TT",
            ProcessCorner::Ff => "FF",
            ProcessCorner::Fs => "FS",
            ProcessCorner::Sf => "SF",
        }
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`ProcessCorner`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCornerError {
    input: String,
}

impl fmt::Display for ParseCornerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown process corner `{}` (expected one of SS, TT, FF, FS, SF)",
            self.input
        )
    }
}

impl std::error::Error for ParseCornerError {}

impl FromStr for ProcessCorner {
    type Err = ParseCornerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "SS" => Ok(ProcessCorner::Ss),
            "TT" => Ok(ProcessCorner::Tt),
            "FF" => Ok(ProcessCorner::Ff),
            "FS" => Ok(ProcessCorner::Fs),
            "SF" => Ok(ProcessCorner::Sf),
            _ => Err(ParseCornerError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vth_values() {
        // nMOS Vth: 302 mV slow, 287 mV typical, 272 mV fast.
        let typical = Volts(0.287);
        let ss = typical + ProcessCorner::Ss.nmos_vth_shift();
        let ff = typical + ProcessCorner::Ff.nmos_vth_shift();
        assert!((ss.millivolts() - 302.0).abs() < 1e-9);
        assert!((ff.millivolts() - 272.0).abs() < 1e-9);
    }

    #[test]
    fn fs_is_asymmetric() {
        let fs = ProcessCorner::Fs;
        assert!(!fs.is_symmetric());
        assert!(fs.nmos_vth_shift().volts() < 0.0);
        assert!(fs.pmos_vth_shift().volts() > 0.0);
        assert!(ProcessCorner::Tt.is_symmetric());
    }

    #[test]
    fn parse_round_trip() {
        for corner in ProcessCorner::ALL {
            let parsed: ProcessCorner = corner.name().parse().expect("round trip");
            assert_eq!(parsed, corner);
        }
        assert_eq!("ss".parse::<ProcessCorner>(), Ok(ProcessCorner::Ss));
        assert!("XX".parse::<ProcessCorner>().is_err());
    }

    #[test]
    fn parse_error_message_names_input() {
        let err = "weird".parse::<ProcessCorner>().unwrap_err();
        assert!(err.to_string().contains("weird"));
    }

    #[test]
    fn default_is_typical() {
        assert_eq!(ProcessCorner::default(), ProcessCorner::Tt);
    }
}
