//! Monte-Carlo process variation.
//!
//! The paper stresses that small threshold fluctuations (~±10 %) cause
//! up to 96 % performance degradation at subthreshold voltages. This
//! module samples per-die global shifts and per-device local mismatch
//! (Pelgrom-style σ ∝ 1/√(W·L)) so the controller can be exercised
//! across a population of virtual chips, not just the named corners.

use subvt_rng::Distribution;
use subvt_rng::{Rng, StdRng};
use subvt_simd::{F64x4, LANES};

use crate::delay::GateMismatch;
use crate::units::Volts;

/// Gaussian sampler — a thin veneer over [`subvt_rng::Normal`], kept
/// as this crate's public name for threshold-shift draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    norm: subvt_rng::Normal,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mean: f64, sigma: f64) -> Gaussian {
        Gaussian {
            norm: subvt_rng::Normal::new(mean, sigma),
        }
    }
}

impl Distribution<f64> for Gaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng)
    }
}

/// Statistical description of threshold-voltage variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// σ of the die-level (global) Vth shift shared by all devices of
    /// one polarity.
    pub global_sigma: Volts,
    /// σ of the per-device (local, mismatch) Vth shift for a
    /// minimum-size device.
    pub local_sigma: Volts,
    /// Correlation between the nMOS and pMOS global shifts
    /// (1 = fully correlated corners, 0 = independent).
    pub np_correlation: f64,
}

impl VariationModel {
    /// Variation magnitudes representative of the paper's 0.13 µm
    /// process: the quoted ±10 % Vth spread (~29 mV) is treated as a
    /// 3σ bound on the global shift.
    pub fn st_130nm() -> VariationModel {
        VariationModel {
            global_sigma: Volts(0.0096),
            local_sigma: Volts(0.012),
            np_correlation: 0.6,
        }
    }

    /// Samples one virtual die.
    pub fn sample_die<R: Rng + ?Sized>(&self, rng: &mut R) -> DieVariation {
        let g = Gaussian::new(0.0, 1.0);
        let zn = g.sample(rng);
        let zi = g.sample(rng);
        let rho = self.np_correlation.clamp(-1.0, 1.0);
        let zp = rho * zn + (1.0 - rho * rho).sqrt() * zi;
        DieVariation {
            nmos_dvth: Volts(zn * self.global_sigma.volts()),
            pmos_dvth: Volts(zp * self.global_sigma.volts()),
            local_sigma: self.local_sigma,
        }
    }

    /// Samples a lane of virtual dies from pre-forked per-die seeds,
    /// writing each die's severity ([`DieVariation::corner_units`]) and
    /// die-average mismatch ([`DieVariation::mean_gate`]) — the
    /// structure-of-arrays form the batched studies consume.
    ///
    /// Per die this is exactly `StdRng::seed_from_u64(seed)` followed
    /// by [`VariationModel::sample_die`]: the Gaussian draws stay
    /// scalar (their tail handling is data-dependent), while the
    /// correlation and scaling arithmetic runs four dies wide with
    /// unchanged per-element operation order, so the lane is
    /// bit-identical to the scalar loop it replaces.
    ///
    /// # Panics
    ///
    /// Panics if the output slices' lengths differ from `seeds`.
    pub fn sample_die_lane(
        &self,
        seeds: &[u64],
        corner_units: &mut [f64],
        mismatches: &mut [GateMismatch],
    ) {
        assert_eq!(
            seeds.len(),
            corner_units.len(),
            "corner-unit lane length must match the seed lane"
        );
        assert_eq!(
            seeds.len(),
            mismatches.len(),
            "mismatch lane length must match the seed lane"
        );
        let g = Gaussian::new(0.0, 1.0);
        // Pure per-die constants, hoisted: the scalar path recomputes
        // them from the same inputs every die.
        let rho = self.np_correlation.clamp(-1.0, 1.0);
        let ortho = (1.0 - rho * rho).sqrt();
        let sigma = self.global_sigma.volts();
        let shift = crate::corner::CORNER_VTH_SHIFT.volts();
        let mut i = 0;
        while i + LANES <= seeds.len() {
            let mut zn = [0.0; LANES];
            let mut zi = [0.0; LANES];
            for k in 0..LANES {
                let mut rng = StdRng::seed_from_u64(seeds[i + k]);
                zn[k] = g.sample(&mut rng);
                zi[k] = g.sample(&mut rng);
            }
            let zn = F64x4(zn);
            let zp = F64x4::splat(rho) * zn + F64x4::splat(ortho) * F64x4(zi);
            let n = zn * F64x4::splat(sigma);
            let p = zp * F64x4::splat(sigma);
            let units = (F64x4::splat(0.5) * (n + p)) / F64x4::splat(shift);
            units.store(corner_units, i);
            let (n, p) = (n.to_array(), p.to_array());
            for k in 0..LANES {
                mismatches[i + k] = GateMismatch {
                    nmos_dvth: Volts(n[k]),
                    pmos_dvth: Volts(p[k]),
                };
            }
            i += LANES;
        }
        for k in i..seeds.len() {
            let die = self.sample_die(&mut StdRng::seed_from_u64(seeds[k]));
            corner_units[k] = die.corner_units();
            mismatches[k] = die.mean_gate();
        }
    }
}

/// The sampled global variation of one virtual die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieVariation {
    /// Global nMOS threshold shift of this die.
    pub nmos_dvth: Volts,
    /// Global pMOS threshold shift of this die.
    pub pmos_dvth: Volts,
    /// Local mismatch σ used when sampling individual gates on this die.
    pub local_sigma: Volts,
}

impl DieVariation {
    /// A perfectly nominal die.
    pub fn nominal() -> DieVariation {
        DieVariation {
            nmos_dvth: Volts::ZERO,
            pmos_dvth: Volts::ZERO,
            local_sigma: Volts::ZERO,
        }
    }

    /// Samples the mismatch of one gate on this die (global shift plus
    /// local Pelgrom term scaled by `1/sqrt(relative_area)`).
    pub fn sample_gate<R: Rng + ?Sized>(&self, rng: &mut R, relative_area: f64) -> GateMismatch {
        assert!(relative_area > 0.0, "device area must be positive");
        let sigma = self.local_sigma.volts() / relative_area.sqrt();
        let g = Gaussian::new(0.0, sigma);
        GateMismatch {
            nmos_dvth: self.nmos_dvth + Volts(g.sample(rng)),
            pmos_dvth: self.pmos_dvth + Volts(g.sample(rng)),
        }
    }

    /// The die-average mismatch (global shift only), e.g. for a large
    /// replica structure that averages out local mismatch.
    pub fn mean_gate(&self) -> GateMismatch {
        GateMismatch {
            nmos_dvth: self.nmos_dvth,
            pmos_dvth: self.pmos_dvth,
        }
    }

    /// Severity of this die in units of the corner shift: +1 ≈ an SS
    /// die, −1 ≈ an FF die.
    pub fn corner_units(&self) -> f64 {
        let avg = 0.5 * (self.nmos_dvth.volts() + self.pmos_dvth.volts());
        avg / crate::corner::CORNER_VTH_SHIFT.volts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_rng::StdRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gaussian::new(2.0, 3.0);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.06, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.06, "sigma {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "invalid sigma")]
    fn gaussian_rejects_negative_sigma() {
        let _ = Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn die_sampling_is_reproducible_with_seed() {
        let model = VariationModel::st_130nm();
        let a = model.sample_die(&mut StdRng::seed_from_u64(42));
        let b = model.sample_die(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn global_spread_matches_ten_percent_bound() {
        // 3σ of the global shift should be ≈ ±29 mV (±10 % of 287 mV).
        let model = VariationModel::st_130nm();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let inside = (0..n)
            .filter(|_| model.sample_die(&mut rng).nmos_dvth.volts().abs() < 0.0287)
            .count();
        let frac = inside as f64 / n as f64;
        assert!(frac > 0.99, "fraction inside 10% bound: {frac}");
    }

    #[test]
    fn die_lane_is_bit_identical_to_scalar_sampling() {
        let model = VariationModel::st_130nm();
        let seeds: Vec<u64> = (0..11)
            .map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))
            .collect();
        // Every lane length: full chunks, ragged tails and sub-chunk.
        for len in 1..=seeds.len() {
            let mut units = vec![0.0; len];
            let mut mms = vec![GateMismatch::NOMINAL; len];
            model.sample_die_lane(&seeds[..len], &mut units, &mut mms);
            for (k, &seed) in seeds[..len].iter().enumerate() {
                let die = model.sample_die(&mut StdRng::seed_from_u64(seed));
                assert_eq!(
                    units[k].to_bits(),
                    die.corner_units().to_bits(),
                    "len {len} die {k}"
                );
                assert_eq!(mms[k], die.mean_gate(), "len {len} die {k}");
            }
        }
    }

    #[test]
    fn np_correlation_is_positive() {
        let model = VariationModel::st_130nm();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut cov = 0.0;
        for _ in 0..n {
            let d = model.sample_die(&mut rng);
            cov += d.nmos_dvth.volts() * d.pmos_dvth.volts();
        }
        cov /= n as f64;
        let sigma2 = model.global_sigma.volts() * model.global_sigma.volts();
        let rho = cov / sigma2;
        assert!((rho - 0.6).abs() < 0.1, "rho {rho}");
    }

    #[test]
    fn larger_devices_mismatch_less() {
        let die = DieVariation {
            nmos_dvth: Volts::ZERO,
            pmos_dvth: Volts::ZERO,
            local_sigma: Volts(0.012),
        };
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let spread = |area: f64, rng: &mut StdRng| -> f64 {
            let var = (0..n)
                .map(|_| die.sample_gate(rng, area).nmos_dvth.volts().powi(2))
                .sum::<f64>()
                / n as f64;
            var.sqrt()
        };
        let small = spread(1.0, &mut rng);
        let big = spread(16.0, &mut rng);
        assert!((small / big - 4.0).abs() < 0.3, "ratio {}", small / big);
    }

    #[test]
    fn nominal_die_has_zero_mismatch() {
        let die = DieVariation::nominal();
        let mut rng = StdRng::seed_from_u64(5);
        let g = die.sample_gate(&mut rng, 1.0);
        assert_eq!(g.nmos_dvth, Volts::ZERO);
        assert_eq!(g.pmos_dvth, Volts::ZERO);
        assert_eq!(die.corner_units(), 0.0);
    }

    #[test]
    fn corner_units_scale() {
        let die = DieVariation {
            nmos_dvth: Volts(0.015),
            pmos_dvth: Volts(0.015),
            local_sigma: Volts::ZERO,
        };
        assert!((die.corner_units() - 1.0).abs() < 1e-9);
    }
}
