//! The 0.13 µm technology bundle: device flavours plus gate-library
//! electrical data.
//!
//! [`Technology::st_130nm`] returns the calibrated model of the paper's
//! 0.13 µm ST CMOS process. Its constants are produced by
//! [`crate::calibration::fit_delay_model`] against the paper's published
//! inverter delays (102 ps @ 1.2 V, 442 ps @ 0.6 V, 79 430 ps @ 0.2 V)
//! and are verified by the calibration tests.

use crate::mosfet::{DeviceType, MosfetParams};
use crate::units::{Farads, Volts};

/// Logic-gate flavours of the small standard-cell library the paper's
/// circuits use (ring oscillator of NAND gates, INV-NOR TDC delay cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GateKind {
    /// Minimum-size inverter.
    #[default]
    Inverter,
    /// Two-input NAND (stacked nMOS pull-down).
    Nand2,
    /// Two-input NOR (stacked pMOS pull-up).
    Nor2,
}

impl GateKind {
    /// All library gates.
    pub const ALL: [GateKind; 3] = [GateKind::Inverter, GateKind::Nand2, GateKind::Nor2];

    /// Effective switched-capacitance multiplier relative to an
    /// inverter (larger input/self load for the two-input gates).
    #[inline]
    pub fn cap_factor(self) -> f64 {
        match self {
            GateKind::Inverter => 1.0,
            GateKind::Nand2 | GateKind::Nor2 => 1.4,
        }
    }

    /// Drive-strength derating of the stacked network.
    ///
    /// Returns `(nmos_factor, pmos_factor)`; the stacked pair conducts
    /// roughly half as strongly as a single device of the same size.
    #[inline]
    pub fn stack_factors(self) -> (f64, f64) {
        match self {
            GateKind::Inverter => (1.0, 1.0),
            GateKind::Nand2 => (0.55, 1.0),
            GateKind::Nor2 => (1.0, 0.55),
        }
    }

    /// Average number of leaking devices presented by the gate (used by
    /// the energy model; stacked off-paths leak less).
    #[inline]
    pub fn leak_factor(self) -> f64 {
        match self {
            GateKind::Inverter => 1.0,
            GateKind::Nand2 | GateKind::Nor2 => 0.8,
        }
    }
}

/// Calibrated parameters of one CMOS technology.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable process name.
    pub name: String,
    /// n-channel device parameters.
    pub nmos: MosfetParams,
    /// p-channel device parameters.
    pub pmos: MosfetParams,
    /// Effective switched capacitance of a minimum inverter (gate +
    /// self + local-wire load).
    pub gate_cap: Farads,
    /// Dimensionless delay prefactor of the CV/I metric (≈ ln 2 for an
    /// ideal RC step response; absorbed into the calibration).
    pub delay_fit: f64,
    /// Minimum functional supply voltage: below this, static CMOS logic
    /// loses regenerative noise margins and the model reports failure.
    pub min_vdd: Volts,
    /// Nominal supply voltage.
    pub nominal_vdd: Volts,
}

impl Technology {
    /// The calibrated 0.13 µm ST-class process of the paper.
    ///
    /// `slope_factor`, `dibl` and the drive scale are the output of
    /// [`crate::calibration::fit_delay_model`]; see that module's tests
    /// for the provenance of each constant.
    pub fn st_130nm() -> Technology {
        let mut nmos = MosfetParams::nmos_130nm();
        let mut pmos = MosfetParams::pmos_130nm();
        // Calibrated against the paper's three inverter-delay points
        // (see calibration::fit_delay_model and its regression test).
        nmos.slope_factor = CALIBRATED_SLOPE_FACTOR;
        pmos.slope_factor = CALIBRATED_SLOPE_FACTOR + 0.02;
        nmos.dibl = CALIBRATED_DIBL;
        pmos.dibl = CALIBRATED_DIBL;
        nmos.spec_current = crate::units::Amps(CALIBRATED_NMOS_SPEC);
        pmos.spec_current = crate::units::Amps(CALIBRATED_PMOS_SPEC);
        Technology {
            name: "st-0.13um".to_owned(),
            nmos,
            pmos,
            gate_cap: Farads::from_femtos(2.0),
            delay_fit: 0.69,
            min_vdd: Volts(0.1),
            nominal_vdd: Volts(1.2),
        }
    }

    /// A representative 65 nm-class low-power process — the node of the
    /// paper's references \[2\] (Kwong, ISSCC'08) and \[9\] (Ramadass,
    /// JSSC'08), which demonstrate sub-Vt operation down to 250-300 mV.
    ///
    /// No delay triplet is published in those papers, so the anchors
    /// (40 ps @ 1.2 V, 200 ps @ 0.6 V, 25 ns @ 0.25 V; Vth = 320 mV)
    /// are representative rather than reproduced; the point of this
    /// preset is to exercise the whole stack on a second node.
    pub fn generic_65nm() -> Technology {
        let mut nmos = MosfetParams::nmos_130nm();
        let mut pmos = MosfetParams::pmos_130nm();
        nmos.vth0 = Volts(0.320);
        pmos.vth0 = Volts(0.335);
        nmos.slope_factor = CALIBRATED_65NM_SLOPE;
        pmos.slope_factor = CALIBRATED_65NM_SLOPE + 0.02;
        nmos.dibl = CALIBRATED_65NM_DIBL;
        pmos.dibl = CALIBRATED_65NM_DIBL;
        nmos.spec_current = crate::units::Amps(CALIBRATED_65NM_NMOS_SPEC);
        pmos.spec_current = crate::units::Amps(CALIBRATED_65NM_NMOS_SPEC / 2.0);
        Technology {
            name: "generic-65nm".to_owned(),
            nmos,
            pmos,
            gate_cap: Farads::from_femtos(1.1),
            delay_fit: 0.69,
            min_vdd: Volts(0.10),
            nominal_vdd: Volts(1.2),
        }
    }

    /// Returns the parameters for one device flavour.
    #[inline]
    pub fn device(&self, device: DeviceType) -> &MosfetParams {
        match device {
            DeviceType::Nmos => &self.nmos,
            DeviceType::Pmos => &self.pmos,
        }
    }

    /// True when `vdd` is high enough for functional static-CMOS
    /// operation in this technology.
    #[inline]
    pub fn is_operational(&self, vdd: Volts) -> bool {
        vdd >= self.min_vdd
    }
}

/// Calibrated subthreshold slope factor (fit_delay_model output; an
/// exact three-point fit to the paper's published inverter delays).
pub(crate) const CALIBRATED_SLOPE_FACTOR: f64 = 1.243_610;
/// Calibrated DIBL coefficient (fit_delay_model output).
pub(crate) const CALIBRATED_DIBL: f64 = 0.015_583;
/// Calibrated nMOS specific current, A (fit_delay_model output).
pub(crate) const CALIBRATED_NMOS_SPEC: f64 = 3.959_098e-8;
/// Calibrated pMOS specific current, A (keeps the balanced-inverter
/// n/p drive ratio: spec·W/L equal for both flavours).
pub(crate) const CALIBRATED_PMOS_SPEC: f64 = CALIBRATED_NMOS_SPEC / 2.0;

/// 65 nm preset slope factor (fit_delay_model against the
/// representative anchors; see `examples/fit_constants.rs`).
pub(crate) const CALIBRATED_65NM_SLOPE: f64 = 1.195_418;
/// 65 nm preset DIBL coefficient (fit output).
pub(crate) const CALIBRATED_65NM_DIBL: f64 = 0.013_982;
/// 65 nm preset nMOS specific current, A (fit output).
pub(crate) const CALIBRATED_65NM_NMOS_SPEC: f64 = 5.526_533e-8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_130nm_has_paper_vth() {
        let tech = Technology::st_130nm();
        assert!((tech.nmos.vth0.millivolts() - 287.0).abs() < 1e-9);
        assert_eq!(tech.nominal_vdd, Volts(1.2));
    }

    #[test]
    fn device_lookup_matches_flavour() {
        let tech = Technology::st_130nm();
        assert_eq!(tech.device(DeviceType::Nmos).device, DeviceType::Nmos);
        assert_eq!(tech.device(DeviceType::Pmos).device, DeviceType::Pmos);
    }

    #[test]
    fn operational_floor() {
        let tech = Technology::st_130nm();
        assert!(tech.is_operational(Volts(0.2)));
        assert!(!tech.is_operational(Volts(0.05)));
    }

    #[test]
    fn stack_factors_slow_the_stacked_network() {
        let (n, p) = GateKind::Nand2.stack_factors();
        assert!(n < 1.0 && (p - 1.0).abs() < 1e-12);
        let (n, p) = GateKind::Nor2.stack_factors();
        assert!((n - 1.0).abs() < 1e-12 && p < 1.0);
    }

    #[test]
    fn two_input_gates_have_more_cap() {
        assert!(GateKind::Nand2.cap_factor() > GateKind::Inverter.cap_factor());
    }

    #[test]
    fn generic_65nm_hits_its_anchors() {
        use crate::delay::GateTiming;
        use crate::mosfet::Environment;
        let tech = Technology::generic_65nm();
        let timing = GateTiming::new(&tech);
        let env = Environment::nominal();
        for (v, ps) in [(1.2, 40.0), (0.6, 200.0), (0.25, 25_000.0)] {
            let d = timing
                .gate_delay(GateKind::Inverter, Volts(v), env)
                .expect("in range");
            assert!(
                (d.picos() - ps).abs() / ps < 0.05,
                "{v} V: {} ps vs {ps} ps",
                d.picos()
            );
        }
    }

    #[test]
    fn generic_65nm_is_faster_than_130nm() {
        use crate::delay::GateTiming;
        use crate::mosfet::Environment;
        let env = Environment::nominal();
        let t130 = Technology::st_130nm();
        let t65 = Technology::generic_65nm();
        for v in [0.4, 0.8, 1.2] {
            let d130 = GateTiming::new(&t130)
                .gate_delay(GateKind::Inverter, Volts(v), env)
                .unwrap();
            let d65 = GateTiming::new(&t65)
                .gate_delay(GateKind::Inverter, Volts(v), env)
                .unwrap();
            assert!(d65.value() < d130.value(), "{v} V");
        }
    }
}
