//! EKV-style analytic MOSFET model valid from deep subthreshold to
//! strong inversion.
//!
//! This is the substitute for the paper's SPICE + 0.13 µm ST foundry
//! models. The controller only observes the circuit through delay and
//! leakage, both of which are set by the transistor's on- and
//! off-currents; the single-piece EKV interpolation
//!
//! ```text
//! I_d = I_spec(T) · ln²(1 + e^((Vgs − Vth_eff) / (2 n U_T))) · (1 − e^(−Vds/U_T))
//! ```
//!
//! reproduces the exponential subthreshold region (the regime the paper
//! operates in), the quadratic strong-inversion region, and a smooth
//! moderate-inversion transition, which is exactly the curvature that
//! makes the minimum-energy point move with process and temperature.

use crate::constants::{nominal_temperature, thermal_voltage};
use crate::corner::ProcessCorner;
use crate::units::{Amps, Kelvin, Volts};

/// Polarity of a MOS device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceType {
    /// n-channel device.
    #[default]
    Nmos,
    /// p-channel device.
    Pmos,
}

impl DeviceType {
    /// Threshold shift this device experiences at a process corner.
    #[inline]
    pub fn corner_vth_shift(self, corner: ProcessCorner) -> Volts {
        match self {
            DeviceType::Nmos => corner.nmos_vth_shift(),
            DeviceType::Pmos => corner.pmos_vth_shift(),
        }
    }
}

/// The operating environment a device sees: global process corner and
/// die temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Global process corner.
    pub corner: ProcessCorner,
    /// Die temperature.
    pub temperature: Kelvin,
}

impl Environment {
    /// Nominal environment: typical corner at 25 °C.
    pub fn nominal() -> Environment {
        Environment {
            corner: ProcessCorner::Tt,
            temperature: nominal_temperature(),
        }
    }

    /// Environment at a given corner, 25 °C.
    pub fn at_corner(corner: ProcessCorner) -> Environment {
        Environment {
            corner,
            temperature: nominal_temperature(),
        }
    }

    /// Environment at the typical corner and a given Celsius temperature.
    pub fn at_celsius(celsius: f64) -> Environment {
        Environment {
            corner: ProcessCorner::Tt,
            temperature: Kelvin::from_celsius(celsius),
        }
    }

    /// Replaces the temperature, keeping the corner.
    pub fn with_celsius(self, celsius: f64) -> Environment {
        Environment {
            temperature: Kelvin::from_celsius(celsius),
            ..self
        }
    }

    /// Replaces the corner, keeping the temperature.
    pub fn with_corner(self, corner: ProcessCorner) -> Environment {
        Environment { corner, ..self }
    }
}

impl Default for Environment {
    fn default() -> Environment {
        Environment::nominal()
    }
}

/// Technology parameters of one device flavour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Device polarity.
    pub device: DeviceType,
    /// Zero-bias threshold voltage magnitude at 25 °C, typical corner.
    pub vth0: Volts,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub slope_factor: f64,
    /// Specific current at W/L = 1 and 25 °C (sets the absolute drive).
    pub spec_current: Amps,
    /// Drawn W/L ratio of the device instance.
    pub width_ratio: f64,
    /// DIBL coefficient λ_d (V of Vth reduction per V of Vds).
    pub dibl: f64,
    /// Threshold temperature coefficient dVth/dT (typically ≈ −1 mV/K).
    pub vth_tempco: f64,
    /// Mobility temperature exponent (µ ∝ (T/T0)^exp, typically ≈ −1.5).
    pub mobility_exponent: f64,
}

impl MosfetParams {
    /// 0.13 µm-class nMOS parameters matching the paper's quoted
    /// Vth = 287 mV (typical).
    pub fn nmos_130nm() -> MosfetParams {
        MosfetParams {
            device: DeviceType::Nmos,
            vth0: Volts(0.287),
            slope_factor: 1.45,
            spec_current: Amps(6.0e-7),
            width_ratio: 2.0,
            dibl: 0.08,
            vth_tempco: -1.0e-3,
            mobility_exponent: -1.5,
        }
    }

    /// 0.13 µm-class pMOS parameters (wider device to balance the
    /// weaker hole mobility; |Vth| slightly higher than nMOS).
    pub fn pmos_130nm() -> MosfetParams {
        MosfetParams {
            device: DeviceType::Pmos,
            vth0: Volts(0.305),
            slope_factor: 1.50,
            spec_current: Amps(2.4e-7),
            width_ratio: 4.0,
            dibl: 0.09,
            vth_tempco: -1.0e-3,
            mobility_exponent: -1.5,
        }
    }

    /// Effective threshold voltage at the given environment and
    /// drain-source bias, including corner shift, temperature drift,
    /// DIBL and any per-instance local mismatch.
    pub fn vth_effective(&self, env: Environment, vds: Volts, local_delta: Volts) -> Volts {
        let dt = env.temperature.value() - nominal_temperature().value();
        self.vth0 + self.device.corner_vth_shift(env.corner) + Volts(self.vth_tempco * dt)
            - Volts(self.dibl * vds.volts().abs())
            + local_delta
    }

    /// Temperature-adjusted specific current, scaled by W/L.
    ///
    /// Combines mobility degradation (T/T0)^(−1.5) with the EKV
    /// 2nµC'U_T² prefactor's U_T² growth, i.e. a net (T/T0)^(+0.5).
    pub fn spec_current_at(&self, temperature: Kelvin) -> Amps {
        let t0 = nominal_temperature().value();
        let t = temperature.value();
        let mobility = (t / t0).powf(self.mobility_exponent);
        let ut_sq = (t / t0) * (t / t0);
        Amps(self.spec_current.value() * self.width_ratio * mobility * ut_sq)
    }

    /// Drain current using the EKV interpolation, for terminal voltage
    /// magnitudes (pass |Vgs|, |Vds| for pMOS).
    ///
    /// `local_delta` is a per-instance threshold mismatch (zero for a
    /// nominal device; sampled by [`crate::variation`] for Monte Carlo).
    ///
    /// ```
    /// # use subvt_device::mosfet::{MosfetParams, Environment};
    /// # use subvt_device::units::Volts;
    /// let n = MosfetParams::nmos_130nm();
    /// let env = Environment::nominal();
    /// let deep = n.drain_current(Volts(0.2), Volts(0.2), env, Volts::ZERO);
    /// let strong = n.drain_current(Volts(1.2), Volts(1.2), env, Volts::ZERO);
    /// assert!(strong.value() > 100.0 * deep.value());
    /// ```
    pub fn drain_current(
        &self,
        vgs: Volts,
        vds: Volts,
        env: Environment,
        local_delta: Volts,
    ) -> Amps {
        let ut = thermal_voltage(env.temperature).volts();
        let vth = self.vth_effective(env, vds, local_delta).volts();
        let x = (vgs.volts() - vth) / (2.0 * self.slope_factor * ut);
        // ln(1 + e^x), computed without overflow for large |x|.
        let soft = if x > 30.0 { x } else { x.exp().ln_1p() };
        let saturation = 1.0 - (-vds.volts().abs() / ut).exp();
        Amps(self.spec_current_at(env.temperature).value() * soft * soft * saturation)
    }

    /// On-current: device fully driven, `Vgs = Vds = Vdd`.
    #[inline]
    pub fn on_current(&self, vdd: Volts, env: Environment, local_delta: Volts) -> Amps {
        self.drain_current(vdd, vdd, env, local_delta)
    }

    /// Off-current: gate off, full `Vds = Vdd` across the device
    /// (the DIBL term makes this grow with Vdd).
    #[inline]
    pub fn off_current(&self, vdd: Volts, env: Environment, local_delta: Volts) -> Amps {
        self.drain_current(Volts::ZERO, vdd, env, local_delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> (MosfetParams, Environment) {
        (MosfetParams::nmos_130nm(), Environment::nominal())
    }

    #[test]
    fn subthreshold_current_is_exponential_in_vgs() {
        let (n, env) = nominal();
        // One decade per n·UT·ln(10) ≈ 86 mV of gate drive in deep
        // subthreshold (the softplus interpolation compresses this
        // slightly as the bias approaches moderate inversion).
        let i1 = n.drain_current(Volts(0.0), Volts(0.2), env, Volts::ZERO);
        let i2 = n.drain_current(Volts(0.086), Volts(0.2), env, Volts::ZERO);
        let ratio = i2.value() / i1.value();
        assert!(
            (8.5..11.5).contains(&ratio),
            "expected ~1 decade per 86 mV, got {ratio}"
        );
    }

    #[test]
    fn current_is_monotonic_in_vgs() {
        let (n, env) = nominal();
        let mut last = 0.0;
        for mv in (0..=1200).step_by(25) {
            let i = n
                .drain_current(
                    Volts::from_millivolts(f64::from(mv)),
                    Volts(1.2),
                    env,
                    Volts::ZERO,
                )
                .value();
            assert!(i >= last, "current decreased at {mv} mV");
            last = i;
        }
    }

    #[test]
    fn slow_corner_reduces_current() {
        let n = MosfetParams::nmos_130nm();
        let tt = Environment::nominal();
        let ss = Environment::at_corner(ProcessCorner::Ss);
        let ff = Environment::at_corner(ProcessCorner::Ff);
        let v = Volts(0.25);
        let i_tt = n.on_current(v, tt, Volts::ZERO).value();
        let i_ss = n.on_current(v, ss, Volts::ZERO).value();
        let i_ff = n.on_current(v, ff, Volts::ZERO).value();
        assert!(i_ss < i_tt && i_tt < i_ff);
    }

    #[test]
    fn fs_corner_shifts_devices_oppositely() {
        let n = MosfetParams::nmos_130nm();
        let p = MosfetParams::pmos_130nm();
        let tt = Environment::nominal();
        let fs = Environment::at_corner(ProcessCorner::Fs);
        let v = Volts(0.3);
        assert!(
            n.on_current(v, fs, Volts::ZERO).value() > n.on_current(v, tt, Volts::ZERO).value()
        );
        assert!(
            p.on_current(v, fs, Volts::ZERO).value() < p.on_current(v, tt, Volts::ZERO).value()
        );
    }

    #[test]
    fn temperature_raises_subthreshold_current() {
        let (n, _) = nominal();
        let cold = Environment::at_celsius(25.0);
        let hot = Environment::at_celsius(85.0);
        let v = Volts(0.2);
        let i_cold = n.on_current(v, cold, Volts::ZERO).value();
        let i_hot = n.on_current(v, hot, Volts::ZERO).value();
        // Vth drop + steeper exponential dominate in subthreshold.
        assert!(i_hot > 1.5 * i_cold, "hot {i_hot} vs cold {i_cold}");
    }

    #[test]
    fn off_current_grows_with_vdd_via_dibl() {
        let (n, env) = nominal();
        let low = n.off_current(Volts(0.3), env, Volts::ZERO).value();
        let high = n.off_current(Volts(1.2), env, Volts::ZERO).value();
        assert!(
            high > 2.0 * low,
            "DIBL should raise leakage: {low} -> {high}"
        );
    }

    #[test]
    fn on_off_ratio_is_large_at_nominal_vdd() {
        let (n, env) = nominal();
        let on = n.on_current(Volts(1.2), env, Volts::ZERO).value();
        let off = n.off_current(Volts(1.2), env, Volts::ZERO).value();
        assert!(on / off > 1e3, "ratio {}", on / off);
    }

    #[test]
    fn local_mismatch_shifts_current() {
        let (n, env) = nominal();
        let v = Volts(0.2);
        let nominal_i = n.on_current(v, env, Volts::ZERO).value();
        let slow_i = n.on_current(v, env, Volts(0.03)).value();
        let fast_i = n.on_current(v, env, Volts(-0.03)).value();
        assert!(slow_i < nominal_i && nominal_i < fast_i);
    }

    #[test]
    fn no_overflow_at_extreme_bias() {
        let (n, env) = nominal();
        let i = n.drain_current(Volts(5.0), Volts(5.0), env, Volts::ZERO);
        assert!(i.value().is_finite());
        let i0 = n.drain_current(Volts(-5.0), Volts(1.0), env, Volts::ZERO);
        assert!(i0.value() >= 0.0 && i0.value().is_finite());
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let (n, env) = nominal();
        let i = n.drain_current(Volts(1.2), Volts::ZERO, env, Volts::ZERO);
        assert_eq!(i.value(), 0.0);
    }

    #[test]
    fn environment_builders() {
        let e = Environment::at_corner(ProcessCorner::Ss).with_celsius(85.0);
        assert_eq!(e.corner, ProcessCorner::Ss);
        assert!((e.temperature.celsius() - 85.0).abs() < 1e-9);
        let e2 = e.with_corner(ProcessCorner::Ff);
        assert_eq!(e2.corner, ProcessCorner::Ff);
        assert!((e2.temperature.celsius() - 85.0).abs() < 1e-9);
    }
}
