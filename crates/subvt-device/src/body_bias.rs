//! Body (back-gate) biasing — the variation-mitigation alternative the
//! paper cites as reference \[8\] (Jayakumar & Khatri, DAC'05).
//!
//! A reverse body bias raises the threshold voltage (cuts leakage,
//! slows the device); a forward bias lowers it (speeds the device,
//! leaks more). The body-effect model is the standard first-order
//!
//! ```text
//! ΔVth(Vbs) = γ·(√(2φ_F − Vbs) − √(2φ_F))
//! ```
//!
//! clamped to the forward-bias safety limit (a strongly forward-biased
//! junction would conduct).
//!
//! The controller comparison lives in `subvt-core`: adaptive *supply*
//! scaling (the paper's proposal) vs adaptive *body* biasing at a fixed
//! supply (the cited alternative).

use crate::delay::GateMismatch;
use crate::units::Volts;

/// Body-effect parameters of a device flavour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyEffect {
    /// Body-effect coefficient γ (√V).
    pub gamma: f64,
    /// Surface potential 2φ_F (V).
    pub surface_potential: f64,
    /// Most-negative (reverse) usable bias.
    pub max_reverse: Volts,
    /// Most-positive (forward) usable bias before the junction turns on.
    pub max_forward: Volts,
}

impl BodyEffect {
    /// Representative 0.13 µm bulk-CMOS body effect.
    pub fn bulk_130nm() -> BodyEffect {
        BodyEffect {
            gamma: 0.25,
            surface_potential: 0.85,
            max_reverse: Volts(-1.2),
            max_forward: Volts(0.5),
        }
    }

    /// Threshold shift produced by a source-body bias `vbs`
    /// (negative = reverse bias = higher Vth).
    ///
    /// The bias is clamped into the usable window first.
    pub fn vth_shift(&self, vbs: Volts) -> Volts {
        let v = vbs.clamp(self.max_reverse, self.max_forward).volts();
        let base = self.surface_potential;
        // Guard the square root: a forward bias cannot deplete beyond
        // the surface potential.
        let arg = (base - v).max(0.0);
        Volts(self.gamma * (arg.sqrt() - base.sqrt()))
    }

    /// The bias needed to produce a desired threshold shift, by
    /// bisection over the usable window. Returns `None` when the shift
    /// is outside what the window can produce.
    pub fn bias_for_shift(&self, target: Volts) -> Option<Volts> {
        let lo = self.max_reverse;
        let hi = self.max_forward;
        let f = |v: Volts| self.vth_shift(v) - target;
        // vth_shift is monotone decreasing in vbs.
        if f(lo).volts() < 0.0 || f(hi).volts() > 0.0 {
            return None;
        }
        let (mut lo, mut hi) = (lo.volts(), hi.volts());
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if f(Volts(mid)).volts() > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Volts(0.5 * (lo + hi)))
    }
}

impl Default for BodyEffect {
    fn default() -> Self {
        BodyEffect::bulk_130nm()
    }
}

/// A die-wide body-bias setting for both wells.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BodyBias {
    /// nMOS p-well bias (Vbs; negative = reverse).
    pub nmos_vbs: Volts,
    /// pMOS n-well bias expressed in the same convention (negative =
    /// reverse = higher |Vth|).
    pub pmos_vbs: Volts,
}

impl BodyBias {
    /// Zero bias.
    pub const ZERO: BodyBias = BodyBias {
        nmos_vbs: Volts(0.0),
        pmos_vbs: Volts(0.0),
    };

    /// A symmetric bias applied to both wells.
    pub fn symmetric(vbs: Volts) -> BodyBias {
        BodyBias {
            nmos_vbs: vbs,
            pmos_vbs: vbs,
        }
    }

    /// Converts the bias into the equivalent per-gate threshold
    /// mismatch the rest of the stack understands, using `effect`.
    ///
    /// This composes with process mismatch: apply it on top of a die's
    /// [`GateMismatch`] with [`BodyBias::compose`].
    pub fn to_mismatch(&self, effect: &BodyEffect) -> GateMismatch {
        GateMismatch {
            nmos_dvth: effect.vth_shift(self.nmos_vbs),
            pmos_dvth: effect.vth_shift(self.pmos_vbs),
        }
    }

    /// The die mismatch seen by the circuit when this bias is applied
    /// on top of intrinsic process mismatch.
    pub fn compose(&self, effect: &BodyEffect, process: GateMismatch) -> GateMismatch {
        let bias = self.to_mismatch(effect);
        GateMismatch {
            nmos_dvth: process.nmos_dvth + bias.nmos_dvth,
            pmos_dvth: process.pmos_dvth + bias.pmos_dvth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bias_means_zero_shift() {
        let e = BodyEffect::bulk_130nm();
        assert!(e.vth_shift(Volts::ZERO).volts().abs() < 1e-12);
    }

    #[test]
    fn reverse_bias_raises_vth() {
        let e = BodyEffect::bulk_130nm();
        let shift = e.vth_shift(Volts(-0.6));
        assert!(shift.volts() > 0.02, "reverse shift {shift}");
    }

    #[test]
    fn forward_bias_lowers_vth() {
        let e = BodyEffect::bulk_130nm();
        let shift = e.vth_shift(Volts(0.4));
        assert!(shift.volts() < -0.02, "forward shift {shift}");
    }

    #[test]
    fn shift_is_monotone_in_bias() {
        let e = BodyEffect::bulk_130nm();
        let mut last = f64::MAX;
        for i in 0..=20 {
            let v = -1.2 + 1.7 * f64::from(i) / 20.0;
            let s = e.vth_shift(Volts(v)).volts();
            assert!(s <= last + 1e-12, "not monotone at {v}");
            last = s;
        }
    }

    #[test]
    fn bias_clamps_to_window() {
        let e = BodyEffect::bulk_130nm();
        assert_eq!(e.vth_shift(Volts(-5.0)), e.vth_shift(Volts(-1.2)));
        assert_eq!(e.vth_shift(Volts(2.0)), e.vth_shift(Volts(0.5)));
    }

    #[test]
    fn bias_for_shift_round_trips() {
        let e = BodyEffect::bulk_130nm();
        for target_mv in [-25.0, -10.0, 0.0, 10.0, 25.0] {
            let target = Volts::from_millivolts(target_mv);
            let bias = e.bias_for_shift(target).expect("within window");
            let achieved = e.vth_shift(bias);
            assert!(
                (achieved - target).volts().abs() < 1e-6,
                "{target_mv} mV: achieved {achieved}"
            );
        }
    }

    #[test]
    fn unreachable_shift_is_none() {
        let e = BodyEffect::bulk_130nm();
        assert_eq!(e.bias_for_shift(Volts(0.5)), None);
        assert_eq!(e.bias_for_shift(Volts(-0.5)), None);
    }

    #[test]
    fn bias_composes_with_process_mismatch() {
        let e = BodyEffect::bulk_130nm();
        let process = GateMismatch {
            nmos_dvth: Volts(0.015),
            pmos_dvth: Volts(0.015),
        };
        // A forward bias can cancel a slow die's extra threshold.
        let bias = BodyBias::symmetric(e.bias_for_shift(Volts(-0.015)).unwrap());
        let net = bias.compose(&e, process);
        assert!(net.nmos_dvth.volts().abs() < 1e-6);
        assert!(net.pmos_dvth.volts().abs() < 1e-6);
    }

    #[test]
    fn asymmetric_bias_targets_one_well() {
        let e = BodyEffect::bulk_130nm();
        let bias = BodyBias {
            nmos_vbs: Volts(-0.6),
            pmos_vbs: Volts::ZERO,
        };
        let m = bias.to_mismatch(&e);
        assert!(m.nmos_dvth.volts() > 0.0);
        assert!(m.pmos_dvth.volts().abs() < 1e-12);
    }
}
