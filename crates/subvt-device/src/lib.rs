//! # subvt-device
//!
//! Analytic 0.13 µm CMOS technology model underlying the `subvt`
//! reproduction of *"Variation Resilient Adaptive Controller for
//! Subthreshold Circuits"* (Mishra, Al-Hashimi, Zwolinski — DATE 2009).
//!
//! The crate substitutes for the SPICE + foundry-model layer of the
//! paper's mixed-mode validation flow. It provides:
//!
//! * [`mosfet`] — an EKV-style MOSFET current model covering deep
//!   subthreshold through strong inversion, with process corners,
//!   temperature and local mismatch;
//! * [`delay`] — the CV/I gate-delay metric, calibrated to the paper's
//!   published inverter delays (Fig. 3);
//! * [`energy`] / [`mep`] — the per-operation energy decomposition and
//!   minimum-energy-point analysis (Figs. 1-2);
//! * [`calibration`] — fitting routines that pin the analytic models to
//!   the paper's published silicon numbers;
//! * [`variation`] — Monte-Carlo global + local threshold variation;
//! * [`tabulate`] / [`metrics`] — precomputed monotone-cubic device
//!   surfaces behind the [`tabulate::DeviceEval`] trait (the
//!   Monte-Carlo hot path), plus the counters that measure them;
//! * [`units`] / [`constants`] / [`corner`] / [`technology`] /
//!   [`optimize`] — supporting vocabulary.
//!
//! ## Example
//!
//! Locate the minimum-energy point of the paper's ring-oscillator case
//! study at the typical corner:
//!
//! ```
//! use subvt_device::energy::CircuitProfile;
//! use subvt_device::mep::find_mep;
//! use subvt_device::mosfet::Environment;
//! use subvt_device::technology::Technology;
//! use subvt_device::units::Volts;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::st_130nm();
//! let ring = CircuitProfile::ring_oscillator_uncalibrated();
//! let mep = find_mep(&tech, &ring, Environment::nominal(), Volts(0.12), Volts(0.9))?;
//! println!("Vopt = {:.0} mV, E = {:.2} fJ", mep.vopt.millivolts(), mep.energy.femtos());
//! assert!(mep.vopt.volts() < 0.287); // below threshold
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod body_bias;
pub mod calibration;
pub mod constants;
pub mod corner;
pub mod delay;
pub mod energy;
pub mod mep;
pub mod metrics;
pub mod mosfet;
pub mod noise_margin;
pub mod optimize;
pub mod sizing;
pub mod tabulate;
pub mod technology;
pub mod units;
pub mod variation;

pub use body_bias::{BodyBias, BodyEffect};
pub use corner::ProcessCorner;
pub use delay::{GateMismatch, GateTiming, SupplyRangeError};
pub use energy::{energy_per_cycle, CircuitProfile, EnergyBreakdown};
pub use mep::{energy_sweep, energy_sweep_eval, find_mep, find_mep_eval, MepPoint};
pub use metrics::MetricsSnapshot;
pub use mosfet::{DeviceType, Environment, MosfetParams};
pub use noise_margin::{minimum_operational_vdd, static_noise_margin, switching_threshold};
pub use sizing::{sizing_sweep, SizingPoint};
pub use tabulate::{
    AnalyticEval, AxisSpec, CachedEval, DeviceEval, EvalMode, GridSpec, SharedEval, TabulatedEval,
    ACCURACY_BUDGET,
};
pub use technology::{GateKind, Technology};
pub use units::{Amps, Farads, Hertz, Joules, Kelvin, Ohms, Seconds, Volts, Watts};
pub use variation::{DieVariation, VariationModel};
