//! Tabulated device-model surfaces: the Monte-Carlo hot path's
//! replacement for repeated analytic EKV evaluation.
//!
//! Every quantity the controller stack queries — gate delay, leakage,
//! energy per cycle — is a smooth function of exactly three scalars per
//! device flavour: the supply voltage, the die temperature, and an
//! *additive* threshold shift (global corner shift + local mismatch
//! enter [`MosfetParams::vth_effective`] as one sum). This module
//! precomputes `ln I_on` and `ln I_off` for both device flavours on a
//! uniform (Vdd × T × ΔVth) grid at the TT corner, then answers queries
//! by monotone (Fritsch–Carlson/Butland) cubic interpolation along Vdd
//! and bilinear interpolation along the two slow axes, folding the
//! corner shift and mismatch into the ΔVth coordinate. Delay and energy
//! are reconstructed from the interpolated currents through the *exact*
//! closed-form expressions of [`crate::delay`] and [`crate::energy`],
//! so interpolation of the two log-current surfaces is the only error
//! source, bounded by [`ACCURACY_BUDGET`] and verified by tests.
//!
//! The query path is shaped for the Monte-Carlo inner loop: grid nodes
//! interleave `(value, step-scaled slope)` pairs so a Hermite cell is
//! one contiguous load, the four bracketing cells are blended *before*
//! the cubic is evaluated (linearity makes that the same polynomial at
//! a quarter of the work), axis lookups multiply by precomputed
//! reciprocal steps, and [`DeviceEval::gate_delay_pair`] answers the
//! TDC replica cell's inverter+NOR₂ pair from a single interpolation.
//!
//! Queries outside the grid transparently fall back to the exact
//! analytic model (and bump the
//! [`crate::metrics::MetricsSnapshot::exact_fallbacks`] counter), so a
//! tabulated evaluator is *always* correct — just faster inside the
//! envelope every study actually exercises.
//!
//! Determinism: a built table is a pure function of the
//! [`Technology`] and [`GridSpec`]; interpolation is a pure function of
//! the table. No query order, thread count or cache state can change a
//! result bit, which is what lets the tabulated path ride the PR 2
//! `subvt-exec` contract unchanged (see `DESIGN.md`).

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use subvt_simd::{F64x4, LANES};

use crate::constants::{nominal_temperature, thermal_voltage};
use crate::corner::ProcessCorner;
use crate::delay::{GateMismatch, GateTiming, SupplyRangeError};
use crate::energy::{energy_per_cycle, CircuitProfile, EnergyBreakdown};
use crate::metrics;
use crate::mosfet::{Environment, MosfetParams};
use crate::technology::{GateKind, Technology};
use crate::units::{Amps, Joules, Kelvin, Seconds, Volts};

/// Relative accuracy the tabulated surfaces guarantee against the
/// analytic model, on gate delay and on total energy per cycle, for
/// every in-grid query (see the property tests and the `device_eval`
/// bench, which measures the realised error — typically well under
/// half the budget).
pub const ACCURACY_BUDGET: f64 = 0.01;

/// One uniform grid axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisSpec {
    /// Lowest tabulated coordinate.
    pub lo: f64,
    /// Highest tabulated coordinate.
    pub hi: f64,
    /// Number of grid points (≥ 2).
    pub points: usize,
}

impl AxisSpec {
    /// Creates an axis; panics if `lo >= hi` or `points < 2`.
    pub fn new(lo: f64, hi: f64, points: usize) -> AxisSpec {
        assert!(lo < hi, "axis needs lo < hi (got {lo}..{hi})");
        assert!(points >= 2, "axis needs at least 2 points");
        AxisSpec { lo, hi, points }
    }

    /// Grid spacing.
    #[inline]
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.points - 1) as f64
    }

    /// Coordinate of grid point `i`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.lo + self.step() * i as f64
    }

    /// Locates `x` on the axis: the lower bracketing index and the
    /// fractional position within that cell, or `None` outside the
    /// axis range. Hot queries go through a prebuilt [`Locator`]; this
    /// spec-level view exists for tests and one-off probes.
    #[cfg(test)]
    fn locate(&self, x: f64) -> Option<(usize, f64)> {
        Locator::new(self).locate(x)
    }
}

/// A uniform axis preconditioned for queries: `locate` replaces the
/// per-call division of [`AxisSpec::locate`] with one multiplication by
/// the reciprocal step, precomputed once at table-build time.
#[derive(Debug, Clone, Copy)]
struct Locator {
    lo: f64,
    hi: f64,
    inv_step: f64,
    max_cell: usize,
}

impl Locator {
    fn new(ax: &AxisSpec) -> Locator {
        Locator {
            lo: ax.lo,
            hi: ax.hi,
            inv_step: (ax.points - 1) as f64 / (ax.hi - ax.lo),
            max_cell: ax.points - 2,
        }
    }

    #[inline]
    fn locate(&self, x: f64) -> Option<(usize, f64)> {
        if !(self.lo..=self.hi).contains(&x) {
            return None;
        }
        let u = (x - self.lo) * self.inv_step;
        let i = (u as usize).min(self.max_cell);
        Some((i, u - i as f64))
    }
}

/// Geometry of the tabulated (Vdd × temperature × ΔVth) grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Supply-voltage axis, volts.
    pub vdd: AxisSpec,
    /// Die-temperature axis, kelvin.
    pub temp: AxisSpec,
    /// Additive threshold-shift axis (corner shift + local mismatch),
    /// volts.
    pub dvth: AxisSpec,
}

impl GridSpec {
    /// The default grid for a technology: Vdd from the functional floor
    /// to slightly above nominal (~8 mV spacing), −40..125 °C (7.5 K
    /// spacing — `ln I` is only piecewise-linear along this axis, and
    /// its curvature in T is what dominates the realised error, so the
    /// temperature pitch is the accuracy knob), and ±80 mV of threshold
    /// shift (10 mV spacing) — wide enough for the ±15 mV corner shifts
    /// plus >4σ of the combined global+local mismatch of the paper's
    /// variation model.
    pub fn default_for(tech: &Technology) -> GridSpec {
        GridSpec {
            vdd: AxisSpec::new(tech.min_vdd.volts(), tech.nominal_vdd.volts() + 0.05, 59),
            temp: AxisSpec::new(
                Kelvin::from_celsius(-40.0).value(),
                Kelvin::from_celsius(125.0).value(),
                23,
            ),
            dvth: AxisSpec::new(-0.08, 0.08, 17),
        }
    }

    /// Total number of grid nodes per surface.
    pub fn nodes(&self) -> usize {
        self.vdd.points * self.temp.points * self.dvth.points
    }
}

/// How evaluators answer delay/energy queries. The two variants of the
/// explicit analytic-vs-tabulated choice the hot consumers expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Exact analytic EKV model on every call.
    #[default]
    Analytic,
    /// Precomputed interpolation surfaces with exact fallback.
    Tabulated,
}

impl EvalMode {
    /// Short lowercase label (used in bench payloads and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            EvalMode::Analytic => "analytic",
            EvalMode::Tabulated => "tabulated",
        }
    }

    /// Builds a shareable evaluator of this mode for a technology.
    pub fn build(self, tech: &Technology) -> SharedEval {
        match self {
            EvalMode::Analytic => Arc::new(AnalyticEval::new(tech)),
            EvalMode::Tabulated => Arc::new(TabulatedEval::new(tech)),
        }
    }
}

impl fmt::Display for EvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an [`EvalMode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEvalModeError(String);

impl fmt::Display for ParseEvalModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown eval mode `{}` (expected `analytic` or `tabulated`)",
            self.0
        )
    }
}

impl std::error::Error for ParseEvalModeError {}

impl FromStr for EvalMode {
    type Err = ParseEvalModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "analytic" | "exact" => Ok(EvalMode::Analytic),
            "tabulated" | "tab" => Ok(EvalMode::Tabulated),
            _ => Err(ParseEvalModeError(s.to_owned())),
        }
    }
}

/// The device-evaluation interface the hot consumers program against:
/// callers pick an implementation (analytic, tabulated, memoized)
/// explicitly, and every implementation is a pure function of its
/// construction inputs so the `subvt-exec` determinism contract holds
/// at any `--jobs` count.
pub trait DeviceEval: fmt::Debug + Send + Sync {
    /// The technology this evaluator answers for.
    fn technology(&self) -> &Technology;

    /// Propagation delay of `kind` at `vdd` in `env` with local
    /// mismatch and fanout — the tabulated analogue of
    /// [`GateTiming::gate_delay_with`].
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] when `vdd` is below the functional
    /// floor of the technology.
    fn gate_delay(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<Seconds, SupplyRangeError>;

    /// Energy breakdown of one cycle of `profile` at `vdd` — the
    /// analogue of [`energy_per_cycle`].
    ///
    /// # Errors
    ///
    /// Returns [`SupplyRangeError`] when `vdd` is below the functional
    /// floor of the technology.
    fn energy(
        &self,
        profile: &CircuitProfile,
        vdd: Volts,
        env: Environment,
    ) -> Result<EnergyBreakdown, SupplyRangeError>;

    /// Delays of two gate kinds sharing one (vdd, env, mismatch,
    /// fanout) operating point — the shape of the TDC replica cell,
    /// which times an inverter and a NOR₂ stage together on every
    /// sense. The default is two independent [`DeviceEval::gate_delay`]
    /// calls, bit-identical to making them yourself; table-backed
    /// implementations override it to answer both kinds from a single
    /// current interpolation, which is where most of the hot path's
    /// speedup comes from.
    ///
    /// # Errors
    ///
    /// As [`DeviceEval::gate_delay`].
    fn gate_delay_pair(
        &self,
        kinds: (GateKind, GateKind),
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<(Seconds, Seconds), SupplyRangeError> {
        Ok((
            self.gate_delay(kinds.0, vdd, env, mismatch, fanout)?,
            self.gate_delay(kinds.1, vdd, env, mismatch, fanout)?,
        ))
    }

    /// Delays of one gate kind at one (vdd, env, fanout) operating
    /// point across a whole lane of per-die mismatches — the
    /// batched-study shape, where every die in a `DieBatch` shares the
    /// supply and only the ΔVth draws differ. The default is the
    /// scalar loop, bit-identical to calling [`DeviceEval::gate_delay`]
    /// per die; table-backed implementations override it to resolve
    /// the (Vdd, T) grid position and Hermite basis once and run only
    /// the per-die ΔVth interpolation in the inner loop.
    ///
    /// A single `Result` covers the lane because the only error —
    /// `vdd` below the technology floor — does not depend on the die.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != mismatches.len()`.
    ///
    /// # Errors
    ///
    /// As [`DeviceEval::gate_delay`].
    fn gate_delay_lane(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [Seconds],
    ) -> Result<(), SupplyRangeError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        for (m, o) in mismatches.iter().zip(out.iter_mut()) {
            *o = self.gate_delay(kind, vdd, env, *m, fanout)?;
        }
        Ok(())
    }

    /// Delays of two gate kinds at one shared (vdd, env, fanout)
    /// operating point across a whole lane of per-die mismatches — the
    /// batched TDC-sense shape: every die in a sub-batch times the same
    /// replica cell at the same candidate supply, differing only in its
    /// ΔVth draw. The default is the scalar loop, bit-identical to
    /// calling [`DeviceEval::gate_delay_pair`] per die; the analytic
    /// and tabulated implementations override it with 4-wide kernels
    /// that hoist every die-independent term out of the loop.
    ///
    /// A single `Result` covers the lane because the only error —
    /// `vdd` below the technology floor — does not depend on the die.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != mismatches.len()`.
    ///
    /// # Errors
    ///
    /// As [`DeviceEval::gate_delay`].
    fn gate_delay_pair_lane(
        &self,
        kinds: (GateKind, GateKind),
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [(Seconds, Seconds)],
    ) -> Result<(), SupplyRangeError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        for (m, o) in mismatches.iter().zip(out.iter_mut()) {
            *o = self.gate_delay_pair(kinds, vdd, env, *m, fanout)?;
        }
        Ok(())
    }

    /// Delays of two gate kinds with a *per-die* supply voltage — the
    /// dithered settle loop's shape, where every die walks its own
    /// supply toward the controller's operating point. `out[i]` is
    /// `None` exactly when die `i`'s supply is below the technology
    /// floor (the per-die analogue of the lane-wide error above); the
    /// caller maps that to whatever its scalar path did with the
    /// [`SupplyRangeError`].
    ///
    /// The default is the scalar loop, bit-identical to calling
    /// [`DeviceEval::gate_delay_pair`] per die.
    ///
    /// # Panics
    ///
    /// Panics if `vdds`, `mismatches` and `out` lengths differ.
    fn gate_delay_pair_multi(
        &self,
        kinds: (GateKind, GateKind),
        vdds: &[Volts],
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [Option<(Seconds, Seconds)>],
    ) {
        assert_eq!(
            vdds.len(),
            mismatches.len(),
            "supply lane length must match the mismatch lane"
        );
        assert_eq!(
            vdds.len(),
            out.len(),
            "lane output length must match the supply lane"
        );
        for ((v, m), o) in vdds.iter().zip(mismatches).zip(out.iter_mut()) {
            *o = self.gate_delay_pair(kinds, *v, env, *m, fanout).ok();
        }
    }
}

/// A shareable, thread-safe evaluator handle.
pub type SharedEval = Arc<dyn DeviceEval>;

/// The exact analytic model behind the [`DeviceEval`] interface.
///
/// Owns its [`Technology`] so it can be `'static` and [`Arc`]-shared
/// across worker threads; construct it once per study, not per call.
#[derive(Debug, Clone)]
pub struct AnalyticEval {
    tech: Technology,
}

impl AnalyticEval {
    /// Creates an analytic evaluator for a technology.
    pub fn new(tech: &Technology) -> AnalyticEval {
        AnalyticEval { tech: tech.clone() }
    }
}

/// `ln(1 + e^x)` with the same overflow guard as
/// [`MosfetParams::drain_current`] — the one transcendental of the EKV
/// delay path, kept scalar per lane under the SIMD contract.
#[inline]
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else {
        x.exp().ln_1p()
    }
}

/// Die-independent constants of one EKV on-current evaluation, hoisted
/// out of the per-die loop: at a shared (vdd, env) operating point only
/// the additive ΔVth differs between dies, so the temperature `powf`
/// of the specific current, the corner/tempco/DIBL threshold terms, the
/// softplus argument scale and the saturation factor are all computed
/// once per lane. The per-die arithmetic in [`EkvOnCurrent::at`]
/// mirrors [`MosfetParams::drain_current`] term for term — same
/// values, same association — so every result is bit-identical to the
/// scalar call.
#[derive(Debug, Clone, Copy)]
struct EkvOnCurrent {
    vdd: f64,
    /// [`MosfetParams::vth_effective`] minus the per-die local delta
    /// (`Volts` ops are plain field arithmetic, so splitting the sum
    /// here keeps the scalar association).
    vth_base: f64,
    /// `2 n U_T`, the softplus argument scale.
    denom: f64,
    /// Temperature-adjusted specific current.
    spec: f64,
    /// `1 − exp(−Vdd/U_T)`, the saturation factor.
    sat: f64,
}

impl EkvOnCurrent {
    fn new(p: &MosfetParams, vdd: Volts, env: Environment) -> EkvOnCurrent {
        let ut = thermal_voltage(env.temperature).volts();
        let dt = env.temperature.value() - nominal_temperature().value();
        let vth_base =
            p.vth0.volts() + p.device.corner_vth_shift(env.corner).volts() + p.vth_tempco * dt
                - p.dibl * vdd.volts().abs();
        EkvOnCurrent {
            vdd: vdd.volts(),
            vth_base,
            denom: 2.0 * p.slope_factor * ut,
            spec: p.spec_current_at(env.temperature).value(),
            sat: 1.0 - (-vdd.volts().abs() / ut).exp(),
        }
    }

    /// On-current for one die's local ΔVth (the ragged-tail form).
    #[inline]
    fn at(&self, local: f64) -> f64 {
        let x = (self.vdd - (self.vth_base + local)) / self.denom;
        let soft = softplus(x);
        self.spec * soft * soft * self.sat
    }

    /// On-currents for four dies at once; the surrounding arithmetic
    /// is elementwise 4-wide and the softplus stays scalar per lane,
    /// so the result is bit-identical to four [`EkvOnCurrent::at`]
    /// calls.
    #[inline]
    fn at4(&self, local: F64x4) -> F64x4 {
        let x = (F64x4::splat(self.vdd) - (F64x4::splat(self.vth_base) + local))
            / F64x4::splat(self.denom);
        let xs = x.to_array();
        let soft = F64x4([
            softplus(xs[0]),
            softplus(xs[1]),
            softplus(xs[2]),
            softplus(xs[3]),
        ]);
        F64x4::splat(self.spec) * soft * soft * F64x4::splat(self.sat)
    }
}

/// Per-gate-kind constants of the analytic delay expression at a shared
/// (vdd, fanout): `t = ½(charge/(iₙ·n_stack) + charge/(iₚ·p_stack))`,
/// exactly the expression of [`GateTiming::gate_delay_with`] and
/// [`TabulatedEval::delay_from_currents`].
#[derive(Debug, Clone, Copy)]
struct KindFactors {
    charge: f64,
    n_stack: f64,
    p_stack: f64,
}

impl KindFactors {
    fn new(tech: &Technology, kind: GateKind, vdd: Volts, fanout: f64) -> KindFactors {
        let cap = tech.gate_cap.value() * kind.cap_factor() * fanout.max(0.0);
        let (n_stack, p_stack) = kind.stack_factors();
        KindFactors {
            charge: tech.delay_fit * cap * vdd.volts(),
            n_stack,
            p_stack,
        }
    }

    /// The delay for one die's on-currents.
    #[inline]
    fn delay(&self, i_on_n: f64, i_on_p: f64) -> Seconds {
        let t_fall = self.charge / (i_on_n * self.n_stack);
        let t_rise = self.charge / (i_on_p * self.p_stack);
        Seconds(0.5 * (t_fall + t_rise))
    }

    /// Four dies' delays at once — the wide reciprocal transform
    /// (IEEE divides, elementwise, bit-identical to four
    /// [`KindFactors::delay`] calls).
    #[inline]
    fn delay4(&self, i_on_n: F64x4, i_on_p: F64x4) -> F64x4 {
        let t_fall = F64x4::splat(self.charge) / (i_on_n * F64x4::splat(self.n_stack));
        let t_rise = F64x4::splat(self.charge) / (i_on_p * F64x4::splat(self.p_stack));
        F64x4::splat(0.5) * (t_fall + t_rise)
    }
}

/// Splits a mismatch lane into its nMOS and pMOS ΔVth vectors for one
/// 4-die chunk.
#[inline]
fn mismatch_lanes(ms: &[GateMismatch]) -> (F64x4, F64x4) {
    (
        F64x4([
            ms[0].nmos_dvth.volts(),
            ms[1].nmos_dvth.volts(),
            ms[2].nmos_dvth.volts(),
            ms[3].nmos_dvth.volts(),
        ]),
        F64x4([
            ms[0].pmos_dvth.volts(),
            ms[1].pmos_dvth.volts(),
            ms[2].pmos_dvth.volts(),
            ms[3].pmos_dvth.volts(),
        ]),
    )
}

impl DeviceEval for AnalyticEval {
    fn technology(&self) -> &Technology {
        &self.tech
    }

    fn gate_delay(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<Seconds, SupplyRangeError> {
        GateTiming::new(&self.tech).gate_delay_with(kind, vdd, env, mismatch, fanout)
    }

    fn energy(
        &self,
        profile: &CircuitProfile,
        vdd: Volts,
        env: Environment,
    ) -> Result<EnergyBreakdown, SupplyRangeError> {
        energy_per_cycle(&self.tech, profile, vdd, env)
    }

    fn gate_delay_pair(
        &self,
        kinds: (GateKind, GateKind),
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<(Seconds, Seconds), SupplyRangeError> {
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        metrics::record_analytic_delays(2);
        // On-current is gate-kind independent, so the two EKV
        // evaluations are shared and each kind only prices its own
        // cap/stack factors — half the transcendental work of the
        // default two-call path, bit-identical results.
        let n = EkvOnCurrent::new(&self.tech.nmos, vdd, env);
        let p = EkvOnCurrent::new(&self.tech.pmos, vdd, env);
        let i_n = n.at(mismatch.nmos_dvth.volts());
        let i_p = p.at(mismatch.pmos_dvth.volts());
        Ok((
            KindFactors::new(&self.tech, kinds.0, vdd, fanout).delay(i_n, i_p),
            KindFactors::new(&self.tech, kinds.1, vdd, fanout).delay(i_n, i_p),
        ))
    }

    fn gate_delay_lane(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [Seconds],
    ) -> Result<(), SupplyRangeError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        metrics::record_analytic_delays(mismatches.len() as u64);
        let n = EkvOnCurrent::new(&self.tech.nmos, vdd, env);
        let p = EkvOnCurrent::new(&self.tech.pmos, vdd, env);
        let k = KindFactors::new(&self.tech, kind, vdd, fanout);
        let mut chunks_m = mismatches.chunks_exact(LANES);
        let mut chunks_o = out.chunks_exact_mut(LANES);
        for (ms, os) in (&mut chunks_m).zip(&mut chunks_o) {
            let (ln, lp) = mismatch_lanes(ms);
            let t = k.delay4(n.at4(ln), p.at4(lp)).to_array();
            for (o, t) in os.iter_mut().zip(t) {
                *o = Seconds(t);
            }
        }
        for (m, o) in chunks_m.remainder().iter().zip(chunks_o.into_remainder()) {
            *o = k.delay(n.at(m.nmos_dvth.volts()), p.at(m.pmos_dvth.volts()));
        }
        Ok(())
    }

    fn gate_delay_pair_lane(
        &self,
        kinds: (GateKind, GateKind),
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [(Seconds, Seconds)],
    ) -> Result<(), SupplyRangeError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        metrics::record_analytic_delays(2 * mismatches.len() as u64);
        let n = EkvOnCurrent::new(&self.tech.nmos, vdd, env);
        let p = EkvOnCurrent::new(&self.tech.pmos, vdd, env);
        let ka = KindFactors::new(&self.tech, kinds.0, vdd, fanout);
        let kb = KindFactors::new(&self.tech, kinds.1, vdd, fanout);
        let mut chunks_m = mismatches.chunks_exact(LANES);
        let mut chunks_o = out.chunks_exact_mut(LANES);
        for (ms, os) in (&mut chunks_m).zip(&mut chunks_o) {
            let (ln, lp) = mismatch_lanes(ms);
            let (i_n, i_p) = (n.at4(ln), p.at4(lp));
            let a = ka.delay4(i_n, i_p).to_array();
            let b = kb.delay4(i_n, i_p).to_array();
            for (j, o) in os.iter_mut().enumerate() {
                *o = (Seconds(a[j]), Seconds(b[j]));
            }
        }
        for (m, o) in chunks_m.remainder().iter().zip(chunks_o.into_remainder()) {
            let i_n = n.at(m.nmos_dvth.volts());
            let i_p = p.at(m.pmos_dvth.volts());
            *o = (ka.delay(i_n, i_p), kb.delay(i_n, i_p));
        }
        Ok(())
    }

    fn gate_delay_pair_multi(
        &self,
        kinds: (GateKind, GateKind),
        vdds: &[Volts],
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [Option<(Seconds, Seconds)>],
    ) {
        assert_eq!(
            vdds.len(),
            mismatches.len(),
            "supply lane length must match the mismatch lane"
        );
        assert_eq!(
            vdds.len(),
            out.len(),
            "lane output length must match the supply lane"
        );
        // With a per-die supply the DIBL and saturation terms are
        // per-die too, so the loop stays scalar — but the
        // temperature-only hoists (the `powf` of the specific current,
        // the tempco/corner threshold terms, the softplus scale) still
        // come out, and they dominate the die-independent cost.
        let ut = thermal_voltage(env.temperature).volts();
        let dt = env.temperature.value() - nominal_temperature().value();
        let nmos = &self.tech.nmos;
        let pmos = &self.tech.pmos;
        let spec_n = nmos.spec_current_at(env.temperature).value();
        let spec_p = pmos.spec_current_at(env.temperature).value();
        let vth_n0 = nmos.vth0.volts()
            + nmos.device.corner_vth_shift(env.corner).volts()
            + nmos.vth_tempco * dt;
        let vth_p0 = pmos.vth0.volts()
            + pmos.device.corner_vth_shift(env.corner).volts()
            + pmos.vth_tempco * dt;
        let denom_n = 2.0 * nmos.slope_factor * ut;
        let denom_p = 2.0 * pmos.slope_factor * ut;
        let cap_a = self.tech.gate_cap.value() * kinds.0.cap_factor() * fanout.max(0.0);
        let cap_b = self.tech.gate_cap.value() * kinds.1.cap_factor() * fanout.max(0.0);
        let dc_a = self.tech.delay_fit * cap_a;
        let dc_b = self.tech.delay_fit * cap_b;
        let (na, pa) = kinds.0.stack_factors();
        let (nb, pb) = kinds.1.stack_factors();
        let mut evals = 0u64;
        for i in 0..vdds.len() {
            let vdd = vdds[i];
            if !self.tech.is_operational(vdd) {
                out[i] = None;
                continue;
            }
            evals += 2;
            let v = vdd.volts();
            let sat = 1.0 - (-v.abs() / ut).exp();
            let vth_n = vth_n0 - nmos.dibl * v.abs() + mismatches[i].nmos_dvth.volts();
            let vth_p = vth_p0 - pmos.dibl * v.abs() + mismatches[i].pmos_dvth.volts();
            let soft_n = softplus((v - vth_n) / denom_n);
            let soft_p = softplus((v - vth_p) / denom_p);
            let i_n = spec_n * soft_n * soft_n * sat;
            let i_p = spec_p * soft_p * soft_p * sat;
            let ca = dc_a * v;
            let cb = dc_b * v;
            let d_a = Seconds(0.5 * (ca / (i_n * na) + ca / (i_p * pa)));
            let d_b = Seconds(0.5 * (cb / (i_n * nb) + cb / (i_p * pb)));
            out[i] = Some((d_a, d_b));
        }
        metrics::record_analytic_delays(evals);
    }
}

/// One tabulated `ln I` surface over the (Vdd × T × ΔVth) grid.
///
/// Storage is node-interleaved along the Vdd axis: each grid node
/// stores `(ln I, h·slope)` adjacently, so the four coefficients of a
/// Hermite cell — `(y₀, h·d₀, y₁, h·d₁)` — are one contiguous 32-byte
/// load. Slopes are monotone (Fritsch–Carlson/Butland) estimates,
/// pre-scaled by the Vdd step at build time so queries never touch the
/// step. Node `(ti, si, vi)` lives at data index
/// `2 * ((ti * ns + si) * nv + vi)`.
struct Surface {
    data: Vec<f64>,
}

impl Surface {
    /// Tabulates `ln(current(vdd, temp, dvth))`.
    fn build<F: Fn(Volts, Environment, Volts) -> Amps>(spec: &GridSpec, current: F) -> Surface {
        let (nv, nt, ns) = (spec.vdd.points, spec.temp.points, spec.dvth.points);
        let step = spec.vdd.step();
        let mut data = vec![0.0; 2 * nv * nt * ns];
        let mut col = vec![0.0; nv];
        let mut slopes = vec![0.0; nv];
        for ti in 0..nt {
            let env = Environment {
                corner: ProcessCorner::Tt,
                temperature: Kelvin(spec.temp.value(ti)),
            };
            for si in 0..ns {
                let dvth = Volts(spec.dvth.value(si));
                for (vi, y) in col.iter_mut().enumerate() {
                    *y = current(Volts(spec.vdd.value(vi)), env, dvth).value().ln();
                }
                pchip_slopes(&col, step, &mut slopes);
                let base = 2 * (ti * ns + si) * nv;
                for vi in 0..nv {
                    data[base + 2 * vi] = col[vi];
                    data[base + 2 * vi + 1] = slopes[vi] * step;
                }
            }
        }
        Surface { data }
    }

    /// Interpolated `ln I` at a resolved [`GridPoint`] and a located
    /// ΔVth bracket.
    ///
    /// The four (temp, ΔVth) Hermite cells bracketing the query are
    /// blended bilinearly *first* — the blend is linear in the cell
    /// coefficients, so this evaluates the same polynomial as blending
    /// four per-column cubics at a quarter of the Hermite cost — then
    /// one dot product with the precomputed basis finishes the job.
    #[inline]
    fn sample(&self, grid: &GridPoint, si: usize, sf: f64) -> f64 {
        let b00 = grid.base0 + si * grid.s_stride;
        let b01 = b00 + grid.s_stride;
        let b10 = b00 + grid.t_stride;
        let b11 = b10 + grid.s_stride;
        let tf = grid.tf;
        let w00 = (1.0 - tf) * (1.0 - sf);
        let w01 = (1.0 - tf) * sf;
        let w10 = tf * (1.0 - sf);
        let w11 = tf * sf;
        // The four Hermite coefficients accumulate as one 4-lane
        // vector; each step is the elementwise `cell[j] += w * node[j]`
        // of the scalar form in the same order, so the blend is
        // bit-identical to the pre-SIMD loop.
        let mut acc = F64x4::splat(0.0);
        for (w, b) in [(w00, b00), (w01, b01), (w10, b10), (w11, b11)] {
            acc = acc + F64x4::splat(w) * F64x4::load(&self.data, b);
        }
        let cell = acc.to_array();
        let basis = &grid.basis;
        cell[0] * basis[0] + cell[1] * basis[1] + cell[2] * basis[2] + cell[3] * basis[3]
    }
}

/// A query's position on the grid, resolved once per (Vdd,
/// temperature) operating point and shared by every surface sampled
/// there — a delay query samples two surfaces, an energy query four,
/// and the fused pair query prices two gate kinds on it.
struct GridPoint {
    /// Flat data index of the `(ti, si = 0, vi)` node.
    base0: usize,
    /// Data-index stride of one temperature step.
    t_stride: usize,
    /// Data-index stride of one ΔVth step.
    s_stride: usize,
    /// Fractional position inside the temperature cell.
    tf: f64,
    /// Cubic Hermite basis at the Vdd cell fraction, ordered to match
    /// the interleaved node layout: `[H₀₀, H₁₀, H₀₁, H₁₁]` against
    /// `(y₀, h·d₀, y₁, h·d₁)`.
    basis: [f64; 4],
}

/// Cubic Hermite evaluation on a cell of width `h`, at fraction
/// `t ∈ [0,1]` — the reference form the monotonicity tests probe; the
/// query path works on pre-scaled slopes via [`hermite_basis`].
#[cfg(test)]
fn hermite(y0: f64, y1: f64, d0: f64, d1: f64, h: f64, t: f64) -> f64 {
    let b = hermite_basis(t);
    b[0] * y0 + b[1] * h * d0 + b[2] * y1 + b[3] * h * d1
}

/// The four cubic Hermite basis polynomials at cell fraction `t`, in
/// the order `[H₀₀, H₁₀, H₀₁, H₁₁]` (value₀, slope₀, value₁, slope₁ —
/// slopes pre-scaled by the cell width).
#[inline]
fn hermite_basis(t: f64) -> [f64; 4] {
    let t2 = t * t;
    let t3 = t2 * t;
    [
        2.0 * t3 - 3.0 * t2 + 1.0,
        t3 - 2.0 * t2 + t,
        -2.0 * t3 + 3.0 * t2,
        t3 - t2,
    ]
}

/// Fritsch–Carlson/Butland monotonicity-preserving slopes for uniformly
/// spaced data: interior slopes are the harmonic mean of adjacent
/// secants (zero across a sign change, which is what prevents
/// overshoot), endpoints use the one-sided parabolic estimate clamped
/// to the monotone region.
fn pchip_slopes(y: &[f64], h: f64, d: &mut [f64]) {
    let n = y.len();
    debug_assert!(n >= 2 && d.len() == n);
    let delta = |i: usize| (y[i + 1] - y[i]) / h;
    if n == 2 {
        let s = delta(0);
        d[0] = s;
        d[1] = s;
        return;
    }
    for (i, di) in d.iter_mut().enumerate().take(n - 1).skip(1) {
        let (a, b) = (delta(i - 1), delta(i));
        *di = if a * b > 0.0 {
            2.0 * a * b / (a + b)
        } else {
            0.0
        };
    }
    d[0] = endpoint_slope(delta(0), delta(1));
    d[n - 1] = endpoint_slope(delta(n - 2), delta(n - 3));
}

/// One-sided endpoint slope: parabolic estimate `(3δ₀ − δ₁)/2`, zeroed
/// when it disagrees in sign with the boundary secant and clamped to
/// `3δ₀` when it overshoots (Fritsch–Carlson region).
fn endpoint_slope(d0: f64, d1: f64) -> f64 {
    let s = (3.0 * d0 - d1) / 2.0;
    if s * d0 <= 0.0 {
        0.0
    } else if d1 * d0 < 0.0 && s.abs() > 3.0 * d0.abs() {
        3.0 * d0
    } else {
        s
    }
}

/// Tabulated device evaluator: four `ln I` surfaces (on/off × n/p)
/// plus the exact closed-form delay/energy reconstruction.
pub struct TabulatedEval {
    tech: Technology,
    spec: GridSpec,
    vdd_axis: Locator,
    temp_axis: Locator,
    dvth_axis: Locator,
    nmos_on: Surface,
    pmos_on: Surface,
    nmos_off: Surface,
    pmos_off: Surface,
}

impl fmt::Debug for TabulatedEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TabulatedEval")
            .field("tech", &self.tech.name)
            .field("spec", &self.spec)
            .field("nodes_per_surface", &self.spec.nodes())
            .finish()
    }
}

impl TabulatedEval {
    /// Builds the surfaces on the default grid for `tech`.
    pub fn new(tech: &Technology) -> TabulatedEval {
        TabulatedEval::with_spec(tech, GridSpec::default_for(tech))
    }

    /// Builds the surfaces on an explicit grid.
    pub fn with_spec(tech: &Technology, spec: GridSpec) -> TabulatedEval {
        let start = Instant::now();
        let on = |p: MosfetParams| {
            move |vdd: Volts, env: Environment, dvth: Volts| p.on_current(vdd, env, dvth)
        };
        let off = |p: MosfetParams| {
            move |vdd: Volts, env: Environment, dvth: Volts| p.off_current(vdd, env, dvth)
        };
        let eval = TabulatedEval {
            nmos_on: Surface::build(&spec, on(tech.nmos)),
            pmos_on: Surface::build(&spec, on(tech.pmos)),
            nmos_off: Surface::build(&spec, off(tech.nmos)),
            pmos_off: Surface::build(&spec, off(tech.pmos)),
            vdd_axis: Locator::new(&spec.vdd),
            temp_axis: Locator::new(&spec.temp),
            dvth_axis: Locator::new(&spec.dvth),
            tech: tech.clone(),
            spec,
        };
        metrics::record_table_build(start.elapsed().as_nanos() as u64);
        eval
    }

    /// The grid this evaluator was built on.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Resolves a (Vdd, temperature) operating point to a grid
    /// position, or `None` when either coordinate is off-grid.
    #[inline]
    fn grid_at(&self, vdd: Volts, env: Environment) -> Option<GridPoint> {
        let (vi, vf) = self.vdd_axis.locate(vdd.volts())?;
        let (ti, tf) = self.temp_axis.locate(env.temperature.value())?;
        let s_stride = 2 * self.spec.vdd.points;
        let t_stride = self.spec.dvth.points * s_stride;
        Some(GridPoint {
            base0: ti * t_stride + 2 * vi,
            t_stride,
            s_stride,
            tf,
            basis: hermite_basis(vf),
        })
    }

    /// Interpolated on-currents of the pull-down and pull-up devices at
    /// a resolved grid point, or `None` when either ΔVth coordinate
    /// leaves the grid.
    #[inline]
    fn on_currents(
        &self,
        grid: &GridPoint,
        env: Environment,
        mismatch: GateMismatch,
    ) -> Option<(f64, f64)> {
        let s_n = (env.corner.nmos_vth_shift() + mismatch.nmos_dvth).volts();
        let s_p = (env.corner.pmos_vth_shift() + mismatch.pmos_dvth).volts();
        let (ni, nf) = self.dvth_axis.locate(s_n)?;
        let (pi, pf) = self.dvth_axis.locate(s_p)?;
        Some((
            self.nmos_on.sample(grid, ni, nf).exp(),
            self.pmos_on.sample(grid, pi, pf).exp(),
        ))
    }

    /// All four currents the energy model needs — on and off, n and p —
    /// at a resolved grid point, or `None` off-grid. The energy model
    /// switches and leaks at zero local mismatch, so both device
    /// flavours sit at their corner-only threshold shift and the two
    /// ΔVth locates are shared across the on and off surfaces.
    #[inline]
    fn energy_currents(
        &self,
        grid: &GridPoint,
        env: Environment,
    ) -> Option<((f64, f64), (f64, f64))> {
        let s_n = env.corner.nmos_vth_shift().volts();
        let s_p = env.corner.pmos_vth_shift().volts();
        let (ni, nf) = self.dvth_axis.locate(s_n)?;
        let (pi, pf) = self.dvth_axis.locate(s_p)?;
        Some((
            (
                self.nmos_on.sample(grid, ni, nf).exp(),
                self.pmos_on.sample(grid, pi, pf).exp(),
            ),
            (
                self.nmos_off.sample(grid, ni, nf).exp(),
                self.pmos_off.sample(grid, pi, pf).exp(),
            ),
        ))
    }

    /// The exact delay expression of [`GateTiming::gate_delay_with`],
    /// fed with interpolated currents.
    #[inline]
    fn delay_from_currents(
        &self,
        kind: GateKind,
        vdd: Volts,
        fanout: f64,
        i_on_n: f64,
        i_on_p: f64,
    ) -> Seconds {
        let cap = self.tech.gate_cap.value() * kind.cap_factor() * fanout.max(0.0);
        let (n_stack, p_stack) = kind.stack_factors();
        let charge = self.tech.delay_fit * cap * vdd.volts();
        Seconds(0.5 * (charge / (i_on_n * n_stack) + charge / (i_on_p * p_stack)))
    }
}

impl DeviceEval for TabulatedEval {
    fn technology(&self) -> &Technology {
        &self.tech
    }

    fn gate_delay(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<Seconds, SupplyRangeError> {
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        let interp = self
            .grid_at(vdd, env)
            .and_then(|grid| self.on_currents(&grid, env, mismatch));
        match interp {
            Some((i_n, i_p)) => {
                metrics::record_interp_delay_hit();
                Ok(self.delay_from_currents(kind, vdd, fanout, i_n, i_p))
            }
            None => {
                metrics::record_exact_fallback();
                GateTiming::new(&self.tech).gate_delay_with(kind, vdd, env, mismatch, fanout)
            }
        }
    }

    fn gate_delay_pair(
        &self,
        kinds: (GateKind, GateKind),
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<(Seconds, Seconds), SupplyRangeError> {
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        let interp = self
            .grid_at(vdd, env)
            .and_then(|grid| self.on_currents(&grid, env, mismatch));
        match interp {
            Some((i_n, i_p)) => {
                // One interpolation answers both kinds (they differ
                // only in cap and stack factors); count two hits so
                // the analytic/tabulated query totals stay comparable.
                metrics::record_interp_delay_hits(2);
                Ok((
                    self.delay_from_currents(kinds.0, vdd, fanout, i_n, i_p),
                    self.delay_from_currents(kinds.1, vdd, fanout, i_n, i_p),
                ))
            }
            None => {
                metrics::record_exact_fallback();
                let timing = GateTiming::new(&self.tech);
                Ok((
                    timing.gate_delay_with(kinds.0, vdd, env, mismatch, fanout)?,
                    timing.gate_delay_with(kinds.1, vdd, env, mismatch, fanout)?,
                ))
            }
        }
    }

    fn gate_delay_lane(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [Seconds],
    ) -> Result<(), SupplyRangeError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        // The lane hoist: one (Vdd, T) grid resolution and one Hermite
        // basis for the whole batch; the inner loop is the per-die
        // ΔVth locate + surface sample — the same arithmetic as the
        // scalar path, so every die's delay is bit-identical to a
        // `gate_delay` call.
        let Some(grid) = self.grid_at(vdd, env) else {
            metrics::record_exact_fallback();
            let timing = GateTiming::new(&self.tech);
            for (m, o) in mismatches.iter().zip(out.iter_mut()) {
                *o = timing.gate_delay_with(kind, vdd, env, *m, fanout)?;
            }
            return Ok(());
        };
        // Per die: ΔVth locate + Hermite blend (itself 4-wide over the
        // cell coefficients) and the scalar `exp`; the current → delay
        // reciprocal transform then runs four dies wide whenever the
        // chunk has no off-grid stragglers. Both halves reproduce the
        // scalar arithmetic exactly.
        let k = KindFactors::new(&self.tech, kind, vdd, fanout);
        let mut hits = 0u64;
        let mut i = 0;
        while i < mismatches.len() {
            let n = (mismatches.len() - i).min(LANES);
            let mut cur = [None; LANES];
            for (j, c) in cur.iter_mut().enumerate().take(n) {
                *c = self.on_currents(&grid, env, mismatches[i + j]);
                if c.is_some() {
                    hits += 1;
                }
            }
            match cur {
                [Some(a), Some(b), Some(c), Some(d)] if n == LANES => {
                    let i_n = F64x4([a.0, b.0, c.0, d.0]);
                    let i_p = F64x4([a.1, b.1, c.1, d.1]);
                    let t = k.delay4(i_n, i_p).to_array();
                    for (o, t) in out[i..i + LANES].iter_mut().zip(t) {
                        *o = Seconds(t);
                    }
                }
                _ => {
                    for j in 0..n {
                        match cur[j] {
                            Some((i_n, i_p)) => out[i + j] = k.delay(i_n, i_p),
                            None => {
                                metrics::record_exact_fallback();
                                out[i + j] = GateTiming::new(&self.tech).gate_delay_with(
                                    kind,
                                    vdd,
                                    env,
                                    mismatches[i + j],
                                    fanout,
                                )?;
                            }
                        }
                    }
                }
            }
            i += n;
        }
        metrics::record_interp_delay_hits(hits);
        Ok(())
    }

    fn gate_delay_pair_lane(
        &self,
        kinds: (GateKind, GateKind),
        vdd: Volts,
        env: Environment,
        mismatches: &[GateMismatch],
        fanout: f64,
        out: &mut [(Seconds, Seconds)],
    ) -> Result<(), SupplyRangeError> {
        assert_eq!(
            mismatches.len(),
            out.len(),
            "lane output length must match the mismatch lane"
        );
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        let Some(grid) = self.grid_at(vdd, env) else {
            metrics::record_exact_fallback();
            let timing = GateTiming::new(&self.tech);
            for (m, o) in mismatches.iter().zip(out.iter_mut()) {
                *o = (
                    timing.gate_delay_with(kinds.0, vdd, env, *m, fanout)?,
                    timing.gate_delay_with(kinds.1, vdd, env, *m, fanout)?,
                );
            }
            return Ok(());
        };
        // Same shape as `gate_delay_lane`, pricing both kinds from one
        // per-die interpolation (two hits per die, matching the fused
        // scalar pair's accounting).
        let ka = KindFactors::new(&self.tech, kinds.0, vdd, fanout);
        let kb = KindFactors::new(&self.tech, kinds.1, vdd, fanout);
        let mut hits = 0u64;
        let mut i = 0;
        while i < mismatches.len() {
            let n = (mismatches.len() - i).min(LANES);
            let mut cur = [None; LANES];
            for (j, c) in cur.iter_mut().enumerate().take(n) {
                *c = self.on_currents(&grid, env, mismatches[i + j]);
                if c.is_some() {
                    hits += 2;
                }
            }
            match cur {
                [Some(a), Some(b), Some(c), Some(d)] if n == LANES => {
                    let i_n = F64x4([a.0, b.0, c.0, d.0]);
                    let i_p = F64x4([a.1, b.1, c.1, d.1]);
                    let ta = ka.delay4(i_n, i_p).to_array();
                    let tb = kb.delay4(i_n, i_p).to_array();
                    for (j, o) in out[i..i + LANES].iter_mut().enumerate() {
                        *o = (Seconds(ta[j]), Seconds(tb[j]));
                    }
                }
                _ => {
                    for j in 0..n {
                        match cur[j] {
                            Some((i_n, i_p)) => {
                                out[i + j] = (ka.delay(i_n, i_p), kb.delay(i_n, i_p));
                            }
                            None => {
                                metrics::record_exact_fallback();
                                let timing = GateTiming::new(&self.tech);
                                out[i + j] = (
                                    timing.gate_delay_with(
                                        kinds.0,
                                        vdd,
                                        env,
                                        mismatches[i + j],
                                        fanout,
                                    )?,
                                    timing.gate_delay_with(
                                        kinds.1,
                                        vdd,
                                        env,
                                        mismatches[i + j],
                                        fanout,
                                    )?,
                                );
                            }
                        }
                    }
                }
            }
            i += n;
        }
        metrics::record_interp_delay_hits(hits);
        Ok(())
    }

    fn energy(
        &self,
        profile: &CircuitProfile,
        vdd: Volts,
        env: Environment,
    ) -> Result<EnergyBreakdown, SupplyRangeError> {
        if !self.tech.is_operational(vdd) {
            return Err(SupplyRangeError::new(vdd, self.tech.min_vdd));
        }
        let interp = self
            .grid_at(vdd, env)
            .and_then(|grid| self.energy_currents(&grid, env));
        let Some(((on_n, on_p), (off_n, off_p))) = interp else {
            metrics::record_exact_fallback();
            return energy_per_cycle(&self.tech, profile, vdd, env);
        };
        metrics::record_interp_energy_hit();

        // The exact expressions of `energy_per_cycle`, with the four
        // interpolated currents substituted for the analytic ones.
        let gate_delay = self.delay_from_currents(profile.gate, vdd, 1.0, on_n, on_p);
        let cycle_time = gate_delay * profile.depth;
        let scales = profile.corner_cal.scales(env.corner);

        let cap = self.tech.gate_cap.value()
            * profile.gate.cap_factor()
            * profile.gates
            * profile.activity
            * profile.cap_scale
            * scales.cap;
        let dynamic = Joules(cap * vdd.volts() * vdd.volts());

        let leak_current = Amps(
            0.5 * (off_n + off_p)
                * profile.gates
                * profile.gate.leak_factor()
                * profile.leak_scale
                * scales.leak,
        );
        let leakage = Joules(leak_current.value() * vdd.volts() * cycle_time.value());

        Ok(EnergyBreakdown {
            vdd,
            dynamic,
            leakage,
            cycle_time,
            leak_current,
        })
    }
}

/// Hashable key for a delay query (exact f64 bit patterns — the cache
/// only ever matches truly identical queries, so it is pure
/// memoization and cannot perturb results).
type DelayKey = (u8, u64, u8, u64, u64, u64, u64);
/// Hashable key for an energy query; the `usize` is the profile's
/// address, so cache energy queries only through long-lived profiles.
type EnergyKey = (usize, u64, u8, u64);

fn delay_key(
    kind: GateKind,
    vdd: Volts,
    env: Environment,
    mismatch: GateMismatch,
    fanout: f64,
) -> DelayKey {
    (
        kind_index(kind),
        vdd.volts().to_bits(),
        corner_index(env.corner),
        env.temperature.value().to_bits(),
        mismatch.nmos_dvth.volts().to_bits(),
        mismatch.pmos_dvth.volts().to_bits(),
        fanout.to_bits(),
    )
}

fn kind_index(kind: GateKind) -> u8 {
    match kind {
        GateKind::Inverter => 0,
        GateKind::Nand2 => 1,
        GateKind::Nor2 => 2,
    }
}

fn corner_index(corner: ProcessCorner) -> u8 {
    match corner {
        ProcessCorner::Ss => 0,
        ProcessCorner::Tt => 1,
        ProcessCorner::Ff => 2,
        ProcessCorner::Fs => 3,
        ProcessCorner::Sf => 4,
    }
}

enum CacheSource<'a> {
    Borrowed(&'a dyn DeviceEval),
    Shared(SharedEval),
}

impl CacheSource<'_> {
    #[inline]
    fn get(&self) -> &dyn DeviceEval {
        match self {
            CacheSource::Borrowed(e) => *e,
            CacheSource::Shared(e) => e.as_ref(),
        }
    }
}

/// A memoizing wrapper around any [`DeviceEval`]: repeated identical
/// queries (the per-die settle loops re-evaluate the same few stage
/// delays dozens of times) are answered from a hash map keyed on the
/// exact query bits.
///
/// Use one instance per die/controller so the internal mutex is
/// uncontended and the working set stays small. Errors pass through
/// uncached. Energy queries are keyed on the profile's *address*; only
/// use them with profiles that outlive the cache.
pub struct CachedEval<'a> {
    source: CacheSource<'a>,
    delay: Mutex<HashMap<DelayKey, f64>>,
    energy: Mutex<HashMap<EnergyKey, EnergyBreakdown>>,
}

impl fmt::Debug for CachedEval<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachedEval")
            .field("inner", &self.source.get())
            .finish_non_exhaustive()
    }
}

impl<'a> CachedEval<'a> {
    /// Wraps a borrowed evaluator.
    pub fn new(inner: &'a dyn DeviceEval) -> CachedEval<'a> {
        CachedEval {
            source: CacheSource::Borrowed(inner),
            delay: Mutex::new(HashMap::new()),
            energy: Mutex::new(HashMap::new()),
        }
    }

    /// Wraps a shared evaluator handle (no borrow, `'static`).
    pub fn shared(inner: SharedEval) -> CachedEval<'static> {
        CachedEval {
            source: CacheSource::Shared(inner),
            delay: Mutex::new(HashMap::new()),
            energy: Mutex::new(HashMap::new()),
        }
    }
}

impl DeviceEval for CachedEval<'_> {
    fn technology(&self) -> &Technology {
        self.source.get().technology()
    }

    fn gate_delay(
        &self,
        kind: GateKind,
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<Seconds, SupplyRangeError> {
        let key = delay_key(kind, vdd, env, mismatch, fanout);
        if let Some(&d) = self.delay.lock().expect("delay cache poisoned").get(&key) {
            metrics::record_cache_hit();
            return Ok(Seconds(d));
        }
        let d = self
            .source
            .get()
            .gate_delay(kind, vdd, env, mismatch, fanout)?;
        self.delay
            .lock()
            .expect("delay cache poisoned")
            .insert(key, d.value());
        Ok(d)
    }

    fn gate_delay_pair(
        &self,
        kinds: (GateKind, GateKind),
        vdd: Volts,
        env: Environment,
        mismatch: GateMismatch,
        fanout: f64,
    ) -> Result<(Seconds, Seconds), SupplyRangeError> {
        // Pair results land in the same per-kind map as single queries
        // (a fused answer is bit-identical to two single answers for
        // every implementation), so pairs and singles memoize each
        // other.
        let ka = delay_key(kinds.0, vdd, env, mismatch, fanout);
        let kb = delay_key(kinds.1, vdd, env, mismatch, fanout);
        {
            let map = self.delay.lock().expect("delay cache poisoned");
            if let (Some(&a), Some(&b)) = (map.get(&ka), map.get(&kb)) {
                metrics::record_cache_hit();
                metrics::record_cache_hit();
                return Ok((Seconds(a), Seconds(b)));
            }
        }
        let pair = self
            .source
            .get()
            .gate_delay_pair(kinds, vdd, env, mismatch, fanout)?;
        let mut map = self.delay.lock().expect("delay cache poisoned");
        map.insert(ka, pair.0.value());
        map.insert(kb, pair.1.value());
        Ok(pair)
    }

    fn energy(
        &self,
        profile: &CircuitProfile,
        vdd: Volts,
        env: Environment,
    ) -> Result<EnergyBreakdown, SupplyRangeError> {
        let key: EnergyKey = (
            profile as *const CircuitProfile as usize,
            vdd.volts().to_bits(),
            corner_index(env.corner),
            env.temperature.value().to_bits(),
        );
        if let Some(&e) = self.energy.lock().expect("energy cache poisoned").get(&key) {
            metrics::record_cache_hit();
            return Ok(e);
        }
        let e = self.source.get().energy(profile, vdd, env)?;
        self.energy
            .lock()
            .expect("energy cache poisoned")
            .insert(key, e);
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;

    fn tech() -> Technology {
        Technology::st_130nm()
    }

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs()
    }

    #[test]
    fn gate_delay_lane_is_bit_identical_to_scalar_calls() {
        let tech = tech();
        let evals: [&dyn DeviceEval; 2] = [&AnalyticEval::new(&tech), &TabulatedEval::new(&tech)];
        // A lane of ΔVth draws including one far outside the grid (to
        // force the per-die exact fallback inside an on-grid lane).
        let mismatches: Vec<GateMismatch> = vec![
            GateMismatch::NOMINAL,
            GateMismatch {
                nmos_dvth: Volts(0.013),
                pmos_dvth: Volts(-0.021),
            },
            GateMismatch {
                nmos_dvth: Volts(-0.008),
                pmos_dvth: Volts(0.004),
            },
            GateMismatch {
                nmos_dvth: Volts(0.5),
                pmos_dvth: Volts(0.0),
            },
        ];
        for eval in evals {
            // On-grid and off-grid (hot temperature) operating points.
            for env in [Environment::nominal(), Environment::at_celsius(150.0)] {
                for vdd in [Volts(0.231), Volts(0.35)] {
                    let mut lane = vec![Seconds(0.0); mismatches.len()];
                    eval.gate_delay_lane(GateKind::Nand2, vdd, env, &mismatches, 1.0, &mut lane)
                        .unwrap();
                    for (m, got) in mismatches.iter().zip(&lane) {
                        let scalar = eval.gate_delay(GateKind::Nand2, vdd, env, *m, 1.0).unwrap();
                        assert_eq!(
                            got.value().to_bits(),
                            scalar.value().to_bits(),
                            "{eval:?} vdd={vdd:?}"
                        );
                    }
                }
            }
            // The lane error is the same die-independent floor check.
            let mut lane = vec![Seconds(0.0); mismatches.len()];
            assert!(eval
                .gate_delay_lane(
                    GateKind::Nand2,
                    Volts(0.01),
                    Environment::nominal(),
                    &mismatches,
                    1.0,
                    &mut lane
                )
                .is_err());
        }
    }

    #[test]
    fn gate_delay_pair_is_bit_identical_to_two_single_calls() {
        // The analytic pair override shares the two EKV on-currents
        // between kinds; the tabulated one shares the interpolation.
        // Both must stay bit-identical to two independent gate_delay
        // calls — the contract the TDC replica cell and the memo cache
        // rely on.
        let tech = tech();
        let evals: [&dyn DeviceEval; 2] = [&AnalyticEval::new(&tech), &TabulatedEval::new(&tech)];
        let mms = [
            GateMismatch::NOMINAL,
            GateMismatch {
                nmos_dvth: Volts(0.0123),
                pmos_dvth: Volts(-0.0087),
            },
            GateMismatch {
                nmos_dvth: Volts(0.5),
                pmos_dvth: Volts(0.0),
            },
        ];
        for eval in evals {
            for env in [
                Environment::nominal(),
                Environment::at_corner(ProcessCorner::Ss).with_celsius(85.0),
                Environment::at_celsius(150.0),
            ] {
                for vdd in [Volts(0.231), Volts(0.35)] {
                    for mm in mms {
                        let (inv, nor) = eval
                            .gate_delay_pair(
                                (GateKind::Inverter, GateKind::Nor2),
                                vdd,
                                env,
                                mm,
                                1.0,
                            )
                            .unwrap();
                        let a = eval
                            .gate_delay(GateKind::Inverter, vdd, env, mm, 1.0)
                            .unwrap();
                        let b = eval.gate_delay(GateKind::Nor2, vdd, env, mm, 1.0).unwrap();
                        assert_eq!(inv.value().to_bits(), a.value().to_bits(), "{eval:?}");
                        assert_eq!(nor.value().to_bits(), b.value().to_bits(), "{eval:?}");
                    }
                }
            }
            assert!(eval
                .gate_delay_pair(
                    (GateKind::Inverter, GateKind::Nor2),
                    Volts(0.01),
                    Environment::nominal(),
                    GateMismatch::NOMINAL,
                    1.0
                )
                .is_err());
        }
    }

    #[test]
    fn gate_delay_pair_lane_is_bit_identical_to_scalar_pairs() {
        let tech = tech();
        let evals: [&dyn DeviceEval; 2] = [&AnalyticEval::new(&tech), &TabulatedEval::new(&tech)];
        // Lane lengths exercising every ragged tail (1–3) plus full
        // chunks, with one die far off the ΔVth grid to force the
        // per-die exact fallback inside an otherwise wide lane.
        let draws = [
            (0.0, 0.0),
            (0.013, -0.021),
            (-0.008, 0.004),
            (0.5, 0.0),
            (0.0021, 0.0035),
            (-0.0154, 0.0067),
            (0.0302, -0.0298),
        ];
        for eval in evals {
            for env in [Environment::nominal(), Environment::at_celsius(150.0)] {
                for vdd in [Volts(0.231), Volts(0.35)] {
                    for len in [1, 2, 3, 4, 5, 7] {
                        let mms: Vec<GateMismatch> = draws[..len]
                            .iter()
                            .map(|&(n, p)| GateMismatch {
                                nmos_dvth: Volts(n),
                                pmos_dvth: Volts(p),
                            })
                            .collect();
                        let mut lane = vec![(Seconds(0.0), Seconds(0.0)); len];
                        eval.gate_delay_pair_lane(
                            (GateKind::Inverter, GateKind::Nor2),
                            vdd,
                            env,
                            &mms,
                            1.0,
                            &mut lane,
                        )
                        .unwrap();
                        for (m, got) in mms.iter().zip(&lane) {
                            let want = eval
                                .gate_delay_pair(
                                    (GateKind::Inverter, GateKind::Nor2),
                                    vdd,
                                    env,
                                    *m,
                                    1.0,
                                )
                                .unwrap();
                            assert_eq!(
                                got.0.value().to_bits(),
                                want.0.value().to_bits(),
                                "{eval:?} len={len}"
                            );
                            assert_eq!(
                                got.1.value().to_bits(),
                                want.1.value().to_bits(),
                                "{eval:?} len={len}"
                            );
                        }
                    }
                }
            }
            let mut lane = vec![(Seconds(0.0), Seconds(0.0)); 4];
            assert!(eval
                .gate_delay_pair_lane(
                    (GateKind::Inverter, GateKind::Nor2),
                    Volts(0.01),
                    Environment::nominal(),
                    &[GateMismatch::NOMINAL; 4],
                    1.0,
                    &mut lane
                )
                .is_err());
        }
    }

    #[test]
    fn gate_delay_pair_multi_matches_scalar_with_per_die_floor() {
        let tech = tech();
        let evals: [&dyn DeviceEval; 2] = [&AnalyticEval::new(&tech), &TabulatedEval::new(&tech)];
        let vdds = [
            Volts(0.231),
            Volts(0.05), // below the functional floor → None
            Volts(0.35),
            Volts(0.2985),
            Volts(1.18),
        ];
        let mms = [
            GateMismatch::NOMINAL,
            GateMismatch {
                nmos_dvth: Volts(0.013),
                pmos_dvth: Volts(-0.021),
            },
            GateMismatch {
                nmos_dvth: Volts(0.5),
                pmos_dvth: Volts(0.0),
            },
            GateMismatch {
                nmos_dvth: Volts(-0.008),
                pmos_dvth: Volts(0.004),
            },
            GateMismatch::NOMINAL,
        ];
        for eval in evals {
            for env in [
                Environment::nominal(),
                Environment::at_corner(ProcessCorner::Sf).with_celsius(-10.0),
            ] {
                let mut out = vec![None; vdds.len()];
                eval.gate_delay_pair_multi(
                    (GateKind::Inverter, GateKind::Nor2),
                    &vdds,
                    env,
                    &mms,
                    1.0,
                    &mut out,
                );
                for i in 0..vdds.len() {
                    let want = eval
                        .gate_delay_pair(
                            (GateKind::Inverter, GateKind::Nor2),
                            vdds[i],
                            env,
                            mms[i],
                            1.0,
                        )
                        .ok();
                    match (out[i], want) {
                        (None, None) => {}
                        (Some(got), Some(want)) => {
                            assert_eq!(
                                got.0.value().to_bits(),
                                want.0.value().to_bits(),
                                "{eval:?}"
                            );
                            assert_eq!(
                                got.1.value().to_bits(),
                                want.1.value().to_bits(),
                                "{eval:?}"
                            );
                        }
                        (got, want) => panic!("{eval:?} die {i}: {got:?} vs {want:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn axis_locate_brackets_and_rejects() {
        let ax = AxisSpec::new(0.0, 1.0, 11);
        assert!((ax.step() - 0.1).abs() < 1e-12);
        assert_eq!(ax.locate(-0.01), None);
        assert_eq!(ax.locate(1.01), None);
        let (i, f) = ax.locate(0.25).unwrap();
        assert_eq!(i, 2);
        assert!((f - 0.5).abs() < 1e-9);
        // Both edges are inside.
        assert_eq!(ax.locate(0.0), Some((0, 0.0)));
        let (i, f) = ax.locate(1.0).unwrap();
        assert_eq!(i, 9);
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pchip_reproduces_nodes_and_preserves_monotonicity() {
        // Monotone data with a sharp knee — classic overshoot bait for
        // a natural cubic spline.
        let y = [0.0, 0.1, 0.2, 4.0, 8.0, 8.1];
        let mut d = vec![0.0; y.len()];
        pchip_slopes(&y, 1.0, &mut d);
        let mut last = f64::NEG_INFINITY;
        for cell in 0..y.len() - 1 {
            for k in 0..=20 {
                let t = k as f64 / 20.0;
                let v = hermite(y[cell], y[cell + 1], d[cell], d[cell + 1], 1.0, t);
                assert!(v >= last - 1e-12, "overshoot in cell {cell} at t={t}");
                last = v;
            }
        }
        // Node values are exact.
        for (i, &yi) in y.iter().enumerate().take(y.len() - 1) {
            let v = hermite(yi, y[i + 1], d[i], d[i + 1], 1.0, 0.0);
            assert!((v - yi).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_nodes_are_exact() {
        // At grid nodes interpolation weights collapse to the stored
        // value, which was computed by the analytic model — so node
        // queries are exact to rounding.
        let tech = tech();
        let tab = TabulatedEval::new(&tech);
        let timing = GateTiming::new(&tech);
        let spec = *tab.spec();
        for vi in [0, 10, 30, spec.vdd.points - 1] {
            let vdd = Volts(spec.vdd.value(vi));
            let env = Environment {
                corner: ProcessCorner::Tt,
                temperature: Kelvin(spec.temp.value(3)),
            };
            let t = tab
                .gate_delay(GateKind::Inverter, vdd, env, GateMismatch::NOMINAL, 1.0)
                .unwrap();
            let a = timing
                .gate_delay_with(GateKind::Inverter, vdd, env, GateMismatch::NOMINAL, 1.0)
                .unwrap();
            assert!(
                rel_err(t.value(), a.value()) < 1e-9,
                "node {vi}: {} vs {}",
                t.value(),
                a.value()
            );
        }
    }

    #[test]
    fn off_grid_query_falls_back_to_exact() {
        let tech = tech();
        let tab = TabulatedEval::new(&tech);
        let timing = GateTiming::new(&tech);
        let before = MetricsSnapshot::snapshot();
        // 150 °C is beyond the 125 °C grid edge.
        let env = Environment::at_celsius(150.0);
        let t = tab
            .gate_delay(
                GateKind::Inverter,
                Volts(0.3),
                env,
                GateMismatch::NOMINAL,
                1.0,
            )
            .unwrap();
        let a = timing
            .gate_delay(GateKind::Inverter, Volts(0.3), env)
            .unwrap();
        assert_eq!(t, a, "fallback must be bit-exact analytic");
        let delta = MetricsSnapshot::snapshot().since(&before);
        assert!(delta.exact_fallbacks >= 1);
        // A huge mismatch leaves the ΔVth axis too.
        let wild = GateMismatch {
            nmos_dvth: Volts(0.2),
            pmos_dvth: Volts::ZERO,
        };
        let t = tab
            .gate_delay(
                GateKind::Inverter,
                Volts(0.3),
                Environment::nominal(),
                wild,
                1.0,
            )
            .unwrap();
        let a = timing
            .gate_delay_with(
                GateKind::Inverter,
                Volts(0.3),
                Environment::nominal(),
                wild,
                1.0,
            )
            .unwrap();
        assert_eq!(t, a);
    }

    #[test]
    fn below_floor_errors_match_analytic() {
        let tech = tech();
        let tab = TabulatedEval::new(&tech);
        let err = tab
            .gate_delay(
                GateKind::Inverter,
                Volts(0.05),
                Environment::nominal(),
                GateMismatch::NOMINAL,
                1.0,
            )
            .unwrap_err();
        assert_eq!(err.vdd(), Volts(0.05));
        assert!(tab
            .energy(
                &CircuitProfile::ring_oscillator(),
                Volts(0.01),
                Environment::nominal()
            )
            .is_err());
    }

    #[test]
    fn interpolated_delay_within_budget_at_awkward_points() {
        // Off-node in every axis at once, at all five corners.
        let tech = tech();
        let tab = TabulatedEval::new(&tech);
        let timing = GateTiming::new(&tech);
        let mm = GateMismatch {
            nmos_dvth: Volts(0.0123),
            pmos_dvth: Volts(-0.0087),
        };
        for corner in ProcessCorner::ALL {
            for celsius in [-7.3, 25.0, 61.9, 103.4] {
                let env = Environment::at_corner(corner).with_celsius(celsius);
                for vdd_mv in [137.0, 206.25, 293.0, 441.0, 873.0, 1200.0] {
                    let vdd = Volts::from_millivolts(vdd_mv);
                    for kind in GateKind::ALL {
                        let t = tab.gate_delay(kind, vdd, env, mm, 1.0).unwrap();
                        let a = timing.gate_delay_with(kind, vdd, env, mm, 1.0).unwrap();
                        let e = rel_err(t.value(), a.value());
                        assert!(
                            e < ACCURACY_BUDGET,
                            "{corner} {celsius}C {vdd_mv}mV {kind:?}: err {e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interpolated_energy_within_budget() {
        let tech = tech();
        let tab = TabulatedEval::new(&tech);
        let profile = CircuitProfile::ring_oscillator();
        for corner in ProcessCorner::ALL {
            let env = Environment::at_corner(corner).with_celsius(41.7);
            for vdd_mv in [131.0, 187.5, 225.0, 318.0, 590.0] {
                let vdd = Volts::from_millivolts(vdd_mv);
                let t = tab.energy(&profile, vdd, env).unwrap();
                let a = energy_per_cycle(&tech, &profile, vdd, env).unwrap();
                assert!(
                    rel_err(t.total().value(), a.total().value()) < ACCURACY_BUDGET,
                    "{corner} {vdd_mv}mV total"
                );
                // Dynamic energy is closed-form — must be exact.
                assert_eq!(t.dynamic, a.dynamic);
                assert!(rel_err(t.leakage.value(), a.leakage.value()) < ACCURACY_BUDGET);
                assert!(rel_err(t.cycle_time.value(), a.cycle_time.value()) < ACCURACY_BUDGET);
            }
        }
    }

    #[test]
    fn tabulated_delay_is_monotone_decreasing_in_vdd() {
        // The same sweep the analytic model's test pins, on the
        // interpolated surface: PCHIP along Vdd + convex bilinear
        // combination preserves it.
        let tech = tech();
        let tab = TabulatedEval::new(&tech);
        let env = Environment::nominal().with_celsius(31.0);
        let mut last = f64::INFINITY;
        for mv in 100..=1200 {
            let d = tab
                .gate_delay(
                    GateKind::Inverter,
                    Volts::from_millivolts(f64::from(mv)),
                    env,
                    GateMismatch::NOMINAL,
                    1.0,
                )
                .unwrap()
                .value();
            assert!(d < last, "delay rose at {mv} mV");
            last = d;
        }
    }

    #[test]
    fn eval_mode_parses_builds_and_prints() {
        assert_eq!("analytic".parse::<EvalMode>().unwrap(), EvalMode::Analytic);
        assert_eq!(
            "Tabulated".parse::<EvalMode>().unwrap(),
            EvalMode::Tabulated
        );
        assert_eq!("tab".parse::<EvalMode>().unwrap(), EvalMode::Tabulated);
        assert!("spline".parse::<EvalMode>().is_err());
        assert_eq!(EvalMode::Analytic.to_string(), "analytic");
        let tech = tech();
        for mode in [EvalMode::Analytic, EvalMode::Tabulated] {
            let eval = mode.build(&tech);
            let d = eval
                .gate_delay(
                    GateKind::Inverter,
                    Volts(0.3),
                    Environment::nominal(),
                    GateMismatch::NOMINAL,
                    1.0,
                )
                .unwrap();
            assert!(d.value() > 0.0);
        }
    }

    #[test]
    fn analytic_eval_matches_direct_calls() {
        let tech = tech();
        let eval = AnalyticEval::new(&tech);
        let env = Environment::at_corner(ProcessCorner::Ss);
        let d = eval
            .gate_delay(
                GateKind::Nand2,
                Volts(0.25),
                env,
                GateMismatch::NOMINAL,
                1.0,
            )
            .unwrap();
        let a = GateTiming::new(&tech)
            .gate_delay(GateKind::Nand2, Volts(0.25), env)
            .unwrap();
        assert_eq!(d, a);
        let profile = CircuitProfile::ring_oscillator();
        let e = eval.energy(&profile, Volts(0.25), env).unwrap();
        let b = energy_per_cycle(&tech, &profile, Volts(0.25), env).unwrap();
        assert_eq!(e, b);
        assert_eq!(eval.technology().name, tech.name);
    }

    #[test]
    fn cached_eval_is_transparent_and_hits() {
        let tech = tech();
        let inner = AnalyticEval::new(&tech);
        let cached = CachedEval::new(&inner);
        let env = Environment::nominal();
        let before = MetricsSnapshot::snapshot();
        let d1 = cached
            .gate_delay(
                GateKind::Inverter,
                Volts(0.3),
                env,
                GateMismatch::NOMINAL,
                1.0,
            )
            .unwrap();
        let d2 = cached
            .gate_delay(
                GateKind::Inverter,
                Volts(0.3),
                env,
                GateMismatch::NOMINAL,
                1.0,
            )
            .unwrap();
        assert_eq!(d1, d2);
        let direct = GateTiming::new(&tech)
            .gate_delay(GateKind::Inverter, Volts(0.3), env)
            .unwrap();
        assert_eq!(d1, direct);
        let profile = CircuitProfile::ring_oscillator();
        let e1 = cached.energy(&profile, Volts(0.3), env).unwrap();
        let e2 = cached.energy(&profile, Volts(0.3), env).unwrap();
        assert_eq!(e1, e2);
        let delta = MetricsSnapshot::snapshot().since(&before);
        assert!(delta.cache_hits >= 2, "expected ≥2 hits: {delta:?}");
        // Errors pass through uncached.
        assert!(cached
            .gate_delay(
                GateKind::Inverter,
                Volts(0.01),
                env,
                GateMismatch::NOMINAL,
                1.0
            )
            .is_err());
    }

    #[test]
    fn cached_eval_shared_variant_is_static() {
        let tech = tech();
        let shared: SharedEval = Arc::new(TabulatedEval::new(&tech));
        let cached: CachedEval<'static> = CachedEval::shared(shared);
        let d = cached
            .gate_delay(
                GateKind::Nor2,
                Volts(0.25),
                Environment::nominal(),
                GateMismatch::NOMINAL,
                1.0,
            )
            .unwrap();
        assert!(d.value() > 0.0);
        // Debug formatting stays compact (no grid dump).
        let s = format!("{cached:?}");
        assert!(s.contains("TabulatedEval"), "{s}");
        assert!(
            s.len() < 2_000,
            "debug output unexpectedly large: {}",
            s.len()
        );
    }

    #[test]
    fn table_build_records_metrics() {
        let before = MetricsSnapshot::snapshot();
        let _ = TabulatedEval::new(&tech());
        let delta = MetricsSnapshot::snapshot().since(&before);
        assert!(delta.table_builds >= 1);
    }

    #[test]
    fn second_technology_tabulates_too() {
        let tech = Technology::generic_65nm();
        let tab = TabulatedEval::new(&tech);
        let timing = GateTiming::new(&tech);
        let env = Environment::at_corner(ProcessCorner::Fs).with_celsius(55.5);
        let vdd = Volts(0.333);
        let t = tab
            .gate_delay(GateKind::Inverter, vdd, env, GateMismatch::NOMINAL, 1.0)
            .unwrap();
        let a = timing.gate_delay(GateKind::Inverter, vdd, env).unwrap();
        assert!(rel_err(t.value(), a.value()) < ACCURACY_BUDGET);
    }
}
