//! Per-operation energy model of a subthreshold circuit.
//!
//! Implements the standard minimum-energy analysis (Zhai et al.,
//! ISLPED'05 — the paper's reference \[7\]): per clock cycle the circuit
//! spends
//!
//! ```text
//! E_dyn  = α · N · C_gate · Vdd²           (switched capacitance)
//! E_leak = I_leak(Vdd, corner, T) · Vdd · T_cycle(Vdd, corner, T)
//! ```
//!
//! and because `T_cycle` grows exponentially as Vdd sinks below Vth
//! while `E_dyn` shrinks only quadratically, the total has a minimum —
//! the minimum energy point (MEP) that the paper's controller tracks.

use std::fmt;

use crate::corner::ProcessCorner;
use crate::delay::{GateTiming, SupplyRangeError};
use crate::mosfet::Environment;
use crate::technology::{GateKind, Technology};
use crate::units::{Amps, Joules, Seconds, Volts};

/// Per-corner calibration multipliers for a circuit profile.
///
/// The paper's Fig. 1 reports where each corner's MEP sits on real
/// foundry models; these two knobs per corner let
/// [`crate::calibration::fit_energy_profile`] pin the analytic model to
/// those published loci (the exact spread "will depend on the process
/// parameters of the particular fabrication run", Sec. II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerScales {
    /// Multiplier on the switched capacitance.
    pub cap: f64,
    /// Multiplier on the leakage current.
    pub leak: f64,
}

impl Default for CornerScales {
    fn default() -> CornerScales {
        CornerScales {
            cap: 1.0,
            leak: 1.0,
        }
    }
}

/// Per-corner calibration table.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CornerCalibration {
    /// Scales for the SS corner.
    pub ss: CornerScales,
    /// Scales for the TT corner.
    pub tt: CornerScales,
    /// Scales for the FF corner.
    pub ff: CornerScales,
    /// Scales for the FS corner.
    pub fs: CornerScales,
    /// Scales for the SF corner.
    pub sf: CornerScales,
}

impl CornerCalibration {
    /// Scales for a given corner.
    #[inline]
    pub fn scales(&self, corner: ProcessCorner) -> CornerScales {
        match corner {
            ProcessCorner::Ss => self.ss,
            ProcessCorner::Tt => self.tt,
            ProcessCorner::Ff => self.ff,
            ProcessCorner::Fs => self.fs,
            ProcessCorner::Sf => self.sf,
        }
    }

    /// Mutable scales for a given corner.
    #[inline]
    pub fn scales_mut(&mut self, corner: ProcessCorner) -> &mut CornerScales {
        match corner {
            ProcessCorner::Ss => &mut self.ss,
            ProcessCorner::Tt => &mut self.tt,
            ProcessCorner::Ff => &mut self.ff,
            ProcessCorner::Fs => &mut self.fs,
            ProcessCorner::Sf => &mut self.sf,
        }
    }
}

/// Electrical abstraction of a digital circuit for energy analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitProfile {
    /// Descriptive name (shows up in reports).
    pub name: String,
    /// Representative gate flavour.
    pub gate: GateKind,
    /// Total gate count `N`.
    pub gates: f64,
    /// Switching factor α (fraction of gates that toggle per cycle).
    pub activity: f64,
    /// Logic depth: cycle time = `depth` gate delays.
    pub depth: f64,
    /// Global multiplier on the switched capacitance (calibration knob).
    pub cap_scale: f64,
    /// Global multiplier on the leakage current (calibration knob).
    pub leak_scale: f64,
    /// Per-corner calibration on top of the global knobs.
    pub corner_cal: CornerCalibration,
}

impl CircuitProfile {
    /// The paper's case-study circuit: a ring oscillator built from
    /// NAND gates (Wang/Chandrakasan/Kosonocky, the paper's ref. \[14\])
    /// with fine switching-activity control, *before* calibration.
    ///
    /// Switching factor defaults to the paper's α = 0.1.
    pub fn ring_oscillator_uncalibrated() -> CircuitProfile {
        CircuitProfile {
            name: "nand-ring-oscillator".to_owned(),
            gate: GateKind::Nand2,
            gates: 64.0,
            activity: 0.1,
            depth: 64.0,
            cap_scale: 1.0,
            leak_scale: 0.5,
            corner_cal: CornerCalibration::default(),
        }
    }

    /// The calibrated ring-oscillator profile: the global and
    /// per-corner scales are the output of
    /// [`crate::calibration::fit_energy_profile`] against the paper's
    /// published MEP loci (Fig. 1: Vopt 200/220/250 mV and Emin
    /// 2.65/1.70/2.42 fJ for TT/SS/FS). The FF and SF corners are not
    /// published; their targets (190 mV/3.2 fJ and 230 mV/2.1 fJ) are
    /// interpolations consistent with the published spread and are
    /// flagged as model choices in `EXPERIMENTS.md`.
    pub fn ring_oscillator() -> CircuitProfile {
        let mut p = CircuitProfile::ring_oscillator_uncalibrated();
        p.cap_scale = 2.372_001;
        p.leak_scale = 1.099_502;
        p.corner_cal = CornerCalibration {
            tt: CornerScales {
                cap: 1.0,
                leak: 1.0,
            },
            ss: CornerScales {
                cap: 0.554_904,
                leak: 0.887_552,
            },
            fs: CornerScales {
                cap: 0.625_314,
                leak: 1.518_835,
            },
            ff: CornerScales {
                cap: 1.292_874,
                leak: 1.026_189,
            },
            sf: CornerScales {
                cap: 0.630_101,
                leak: 1.096_693,
            },
        };
        p
    }

    /// Returns the profile with a different switching factor.
    pub fn with_activity(mut self, activity: f64) -> CircuitProfile {
        self.activity = activity;
        self
    }
}

/// Energy decomposition of one operation (cycle) of a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Supply voltage of the evaluation.
    pub vdd: Volts,
    /// Dynamic (switching) energy.
    pub dynamic: Joules,
    /// Leakage energy integrated over the cycle.
    pub leakage: Joules,
    /// Cycle time at this voltage.
    pub cycle_time: Seconds,
    /// Total leakage current.
    pub leak_current: Amps,
}

impl EnergyBreakdown {
    /// Total energy per operation.
    #[inline]
    pub fn total(&self) -> Joules {
        self.dynamic + self.leakage
    }

    /// Fraction of the total that is leakage (0..=1).
    #[inline]
    pub fn leakage_fraction(&self) -> f64 {
        let t = self.total().value();
        if t == 0.0 {
            0.0
        } else {
            self.leakage.value() / t
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} mV: {:.3} fJ total ({:.3} fJ dyn + {:.3} fJ leak, cycle {:.3} ns)",
            self.vdd.millivolts(),
            self.total().femtos(),
            self.dynamic.femtos(),
            self.leakage.femtos(),
            self.cycle_time.nanos()
        )
    }
}

/// Computes the energy breakdown of one cycle of `profile` at `vdd`.
///
/// # Errors
///
/// Returns [`SupplyRangeError`] when `vdd` is below the technology's
/// functional floor.
pub fn energy_per_cycle(
    tech: &Technology,
    profile: &CircuitProfile,
    vdd: Volts,
    env: Environment,
) -> Result<EnergyBreakdown, SupplyRangeError> {
    let timing = GateTiming::new(tech);
    let gate_delay = timing.gate_delay(profile.gate, vdd, env)?;
    crate::metrics::record_analytic_energy();
    let cycle_time = gate_delay * profile.depth;
    let scales = profile.corner_cal.scales(env.corner);

    let cap = tech.gate_cap.value()
        * profile.gate.cap_factor()
        * profile.gates
        * profile.activity
        * profile.cap_scale
        * scales.cap;
    let dynamic = Joules(cap * vdd.volts() * vdd.volts());

    let i_off_n = tech.nmos.off_current(vdd, env, Volts::ZERO).value();
    let i_off_p = tech.pmos.off_current(vdd, env, Volts::ZERO).value();
    let leak_current = Amps(
        0.5 * (i_off_n + i_off_p)
            * profile.gates
            * profile.gate.leak_factor()
            * profile.leak_scale
            * scales.leak,
    );
    let leakage = Joules(leak_current.value() * vdd.volts() * cycle_time.value());

    Ok(EnergyBreakdown {
        vdd,
        dynamic,
        leakage,
        cycle_time,
        leak_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Technology, CircuitProfile) {
        (
            Technology::st_130nm(),
            CircuitProfile::ring_oscillator_uncalibrated(),
        )
    }

    #[test]
    fn dynamic_energy_is_quadratic_in_vdd() {
        let (tech, profile) = fixture();
        let env = Environment::nominal();
        let e1 = energy_per_cycle(&tech, &profile, Volts(0.4), env).unwrap();
        let e2 = energy_per_cycle(&tech, &profile, Volts(0.8), env).unwrap();
        let ratio = e2.dynamic.value() / e1.dynamic.value();
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn leakage_dominates_deep_subthreshold() {
        let (tech, profile) = fixture();
        let env = Environment::nominal();
        let deep = energy_per_cycle(&tech, &profile, Volts(0.13), env).unwrap();
        let high = energy_per_cycle(&tech, &profile, Volts(1.0), env).unwrap();
        assert!(
            deep.leakage_fraction() > 0.5,
            "deep {}",
            deep.leakage_fraction()
        );
        assert!(
            high.leakage_fraction() < 0.1,
            "high {}",
            high.leakage_fraction()
        );
    }

    #[test]
    fn total_energy_is_u_shaped() {
        // Energy at a deep-subthreshold and a high voltage must both
        // exceed the energy somewhere in between.
        let (tech, profile) = fixture();
        let env = Environment::nominal();
        let low = energy_per_cycle(&tech, &profile, Volts(0.12), env)
            .unwrap()
            .total();
        let mid = energy_per_cycle(&tech, &profile, Volts(0.25), env)
            .unwrap()
            .total();
        let high = energy_per_cycle(&tech, &profile, Volts(1.0), env)
            .unwrap()
            .total();
        assert!(mid.value() < low.value(), "mid {} low {}", mid, low);
        assert!(mid.value() < high.value());
    }

    #[test]
    fn higher_activity_raises_dynamic_share() {
        let (tech, profile) = fixture();
        let env = Environment::nominal();
        let lazy =
            energy_per_cycle(&tech, &profile.clone().with_activity(0.05), Volts(0.3), env).unwrap();
        let busy = energy_per_cycle(&tech, &profile.with_activity(0.5), Volts(0.3), env).unwrap();
        assert!(busy.dynamic.value() > 9.0 * lazy.dynamic.value());
        assert!((busy.leakage.value() - lazy.leakage.value()).abs() < 1e-18);
    }

    #[test]
    fn hot_die_leaks_more() {
        let (tech, profile) = fixture();
        let cold =
            energy_per_cycle(&tech, &profile, Volts(0.25), Environment::at_celsius(25.0)).unwrap();
        let hot =
            energy_per_cycle(&tech, &profile, Volts(0.25), Environment::at_celsius(85.0)).unwrap();
        assert!(hot.leakage.value() > 1.5 * cold.leakage.value());
    }

    #[test]
    fn corner_scales_apply() {
        let (tech, mut profile) = fixture();
        let env = Environment::nominal();
        let base = energy_per_cycle(&tech, &profile, Volts(0.3), env).unwrap();
        profile.corner_cal.scales_mut(ProcessCorner::Tt).leak = 2.0;
        let scaled = energy_per_cycle(&tech, &profile, Volts(0.3), env).unwrap();
        assert!((scaled.leakage.value() / base.leakage.value() - 2.0).abs() < 1e-9);
        assert_eq!(scaled.dynamic, base.dynamic);
    }

    #[test]
    fn below_floor_errors() {
        let (tech, profile) = fixture();
        assert!(energy_per_cycle(&tech, &profile, Volts(0.01), Environment::nominal()).is_err());
    }

    #[test]
    fn display_mentions_femtojoules() {
        let (tech, profile) = fixture();
        let e = energy_per_cycle(&tech, &profile, Volts(0.3), Environment::nominal()).unwrap();
        let s = format!("{e}");
        assert!(s.contains("fJ") && s.contains("300 mV"), "{s}");
    }
}
