//! Minimum-energy-point (MEP) analysis: the quantity the paper's
//! adaptive controller exists to track.
//!
//! Provides the energy-vs-Vdd sweep behind Figs. 1 and 2 and a
//! golden-section search for the optimum supply voltage `Vopt`.

use crate::delay::SupplyRangeError;
use crate::energy::{energy_per_cycle, CircuitProfile, EnergyBreakdown};
use crate::mosfet::Environment;
use crate::optimize::golden_section;
use crate::tabulate::DeviceEval;
use crate::technology::Technology;
use crate::units::{Joules, Volts};

/// A located minimum-energy point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MepPoint {
    /// Optimal supply voltage.
    pub vopt: Volts,
    /// Energy per operation at the optimum.
    pub energy: Joules,
    /// Full breakdown at the optimum.
    pub breakdown: EnergyBreakdown,
}

/// Finds the minimum-energy point of `profile` in `env` over
/// `[v_lo, v_hi]`.
///
/// # Errors
///
/// Returns [`SupplyRangeError`] when `v_lo` is below the technology's
/// functional floor.
///
/// # Panics
///
/// Panics if `v_lo >= v_hi`.
///
/// ```
/// # use subvt_device::mep::find_mep;
/// # use subvt_device::energy::CircuitProfile;
/// # use subvt_device::technology::Technology;
/// # use subvt_device::mosfet::Environment;
/// # use subvt_device::units::Volts;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::st_130nm();
/// let ring = CircuitProfile::ring_oscillator_uncalibrated();
/// let mep = find_mep(&tech, &ring, Environment::nominal(), Volts(0.12), Volts(0.9))?;
/// assert!(mep.vopt.volts() > 0.12 && mep.vopt.volts() < 0.5);
/// # Ok(())
/// # }
/// ```
pub fn find_mep(
    tech: &Technology,
    profile: &CircuitProfile,
    env: Environment,
    v_lo: Volts,
    v_hi: Volts,
) -> Result<MepPoint, SupplyRangeError> {
    find_mep_impl(|v| energy_per_cycle(tech, profile, v, env), v_lo, v_hi)
}

/// [`find_mep`] through an explicit [`DeviceEval`] — the tabulated
/// evaluators answer the ~90 energy samples of the golden-section
/// search from their interpolation surfaces.
///
/// # Errors
///
/// Returns [`SupplyRangeError`] when `v_lo` is below the technology's
/// functional floor.
///
/// # Panics
///
/// Panics if `v_lo >= v_hi`.
pub fn find_mep_eval(
    eval: &dyn DeviceEval,
    profile: &CircuitProfile,
    env: Environment,
    v_lo: Volts,
    v_hi: Volts,
) -> Result<MepPoint, SupplyRangeError> {
    find_mep_impl(|v| eval.energy(profile, v, env), v_lo, v_hi)
}

fn find_mep_impl<E>(energy: E, v_lo: Volts, v_hi: Volts) -> Result<MepPoint, SupplyRangeError>
where
    E: Fn(Volts) -> Result<EnergyBreakdown, SupplyRangeError>,
{
    assert!(v_lo < v_hi, "invalid voltage bracket");
    // Validate the lower edge once so the closure below can't fail.
    energy(v_lo)?;
    // Stash the breakdown of the best sample as the search evaluates
    // it, mirroring `golden_section`'s strict-< tie rule so the stashed
    // sample is exactly the one the minimizer returns — no re-eval at
    // the optimum.
    let mut best: Option<EnergyBreakdown> = None;
    let m = golden_section(
        |v| match energy(Volts(v)) {
            Ok(e) => {
                let total = e.total().value();
                if best.is_none_or(|b| total < b.total().value()) {
                    best = Some(e);
                }
                total
            }
            Err(_) => f64::INFINITY,
        },
        v_lo.volts(),
        v_hi.volts(),
        1e-6,
    );
    let breakdown = best.expect("the validated lower edge was sampled");
    debug_assert_eq!(breakdown.vdd.volts(), m.x);
    Ok(MepPoint {
        vopt: Volts(m.x),
        energy: breakdown.total(),
        breakdown,
    })
}

/// Sweeps energy vs supply voltage (the raw series of Figs. 1-2).
///
/// Points below the technology's functional floor are skipped, which is
/// why the returned series may be shorter than `steps + 1`.
///
/// # Panics
///
/// Panics if `v_lo >= v_hi` or `steps == 0`.
pub fn energy_sweep(
    tech: &Technology,
    profile: &CircuitProfile,
    env: Environment,
    v_lo: Volts,
    v_hi: Volts,
    steps: usize,
) -> Vec<EnergyBreakdown> {
    assert!(v_lo < v_hi, "invalid voltage bracket");
    assert!(steps > 0, "need at least one step");
    (0..=steps)
        .filter_map(|i| {
            let v = v_lo.volts() + (v_hi.volts() - v_lo.volts()) * (i as f64) / (steps as f64);
            energy_per_cycle(tech, profile, Volts(v), env).ok()
        })
        .collect()
}

/// [`energy_sweep`] through an explicit [`DeviceEval`].
///
/// # Panics
///
/// Panics if `v_lo >= v_hi` or `steps == 0`.
pub fn energy_sweep_eval(
    eval: &dyn DeviceEval,
    profile: &CircuitProfile,
    env: Environment,
    v_lo: Volts,
    v_hi: Volts,
    steps: usize,
) -> Vec<EnergyBreakdown> {
    assert!(v_lo < v_hi, "invalid voltage bracket");
    assert!(steps > 0, "need at least one step");
    (0..=steps)
        .filter_map(|i| {
            let v = v_lo.volts() + (v_hi.volts() - v_lo.volts()) * (i as f64) / (steps as f64);
            eval.energy(profile, Volts(v), env).ok()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;

    fn fixture() -> (Technology, CircuitProfile) {
        (
            Technology::st_130nm(),
            CircuitProfile::ring_oscillator_uncalibrated(),
        )
    }

    #[test]
    fn mep_exists_in_subthreshold() {
        let (tech, profile) = fixture();
        let mep = find_mep(
            &tech,
            &profile,
            Environment::nominal(),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        // Below the 287 mV threshold: the paper's core premise.
        assert!(mep.vopt.volts() < 0.287, "vopt {}", mep.vopt);
        assert!(mep.vopt.volts() > 0.12);
    }

    #[test]
    fn mep_is_a_true_minimum_of_the_sweep() {
        let (tech, profile) = fixture();
        let env = Environment::nominal();
        let mep = find_mep(&tech, &profile, env, Volts(0.12), Volts(0.9)).unwrap();
        for e in energy_sweep(&tech, &profile, env, Volts(0.12), Volts(0.9), 60) {
            assert!(
                e.total().value() >= mep.energy.value() * (1.0 - 1e-6),
                "sweep point {} beats the located MEP {}",
                e,
                mep.energy
            );
        }
    }

    #[test]
    fn hotter_die_has_higher_vopt() {
        // Fig. 2's qualitative content: temperature pushes the MEP up.
        let (tech, profile) = fixture();
        let cold = find_mep(
            &tech,
            &profile,
            Environment::at_celsius(25.0),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        let hot = find_mep(
            &tech,
            &profile,
            Environment::at_celsius(85.0),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        assert!(hot.vopt.volts() > cold.vopt.volts());
        assert!(hot.energy.value() > cold.energy.value());
    }

    #[test]
    fn sweep_skips_subfloor_points() {
        let (tech, profile) = fixture();
        let series = energy_sweep(
            &tech,
            &profile,
            Environment::nominal(),
            Volts(0.02),
            Volts(0.5),
            24,
        );
        assert!(!series.is_empty());
        assert!(series.iter().all(|e| e.vdd >= tech.min_vdd));
        assert!(series.len() < 25);
    }

    #[test]
    fn leakage_equals_half_ish_at_mep() {
        // At the MEP the leakage and dynamic slopes balance; the
        // leakage fraction should be substantial but not everything.
        let (tech, profile) = fixture();
        let mep = find_mep(
            &tech,
            &profile,
            Environment::nominal(),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        let f = mep.breakdown.leakage_fraction();
        assert!((0.1..0.9).contains(&f), "leakage fraction {f}");
    }

    #[test]
    fn corners_move_the_mep() {
        let (tech, mut profile) = fixture();
        // Give SS a deliberately leakier calibration to emulate the
        // published spread and confirm the MEP reacts.
        profile.corner_cal.scales_mut(ProcessCorner::Ss).leak = 3.0;
        let tt = find_mep(
            &tech,
            &profile,
            Environment::nominal(),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        let ss = find_mep(
            &tech,
            &profile,
            Environment::at_corner(ProcessCorner::Ss),
            Volts(0.12),
            Volts(0.9),
        )
        .unwrap();
        assert!(ss.vopt.volts() > tt.vopt.volts());
    }

    #[test]
    fn calibrated_ring_reproduces_fig1_loci() {
        // Paper Fig. 1: Vopt = 200 mV (TT), 220 mV (SS), 250 mV (FS);
        // Emin = 2.65 fJ (TT), 1.70 fJ (SS), 2.42 fJ (FS).
        let tech = Technology::st_130nm();
        let ring = CircuitProfile::ring_oscillator();
        let targets = [
            (ProcessCorner::Tt, 200.0, 2.65),
            (ProcessCorner::Ss, 220.0, 1.70),
            (ProcessCorner::Fs, 250.0, 2.42),
        ];
        for (corner, vopt_mv, energy_fj) in targets {
            let mep = find_mep(
                &tech,
                &ring,
                Environment::at_corner(corner),
                Volts(0.12),
                Volts(0.6),
            )
            .unwrap();
            assert!(
                (mep.vopt.millivolts() - vopt_mv).abs() / vopt_mv < 0.02,
                "{corner}: vopt {} vs {vopt_mv} mV",
                mep.vopt.millivolts()
            );
            assert!(
                (mep.energy.femtos() - energy_fj).abs() / energy_fj < 0.02,
                "{corner}: energy {} vs {energy_fj} fJ",
                mep.energy.femtos()
            );
        }
    }

    #[test]
    fn fig1_spread_matches_paper_claims() {
        // Sec. II: "a variation in the Vopt of 25% and the energy
        // variation of 55%" across the plotted corners.
        let tech = Technology::st_130nm();
        let ring = CircuitProfile::ring_oscillator();
        let meps: Vec<MepPoint> = ProcessCorner::FIGURE_CORNERS
            .iter()
            .map(|&c| {
                find_mep(
                    &tech,
                    &ring,
                    Environment::at_corner(c),
                    Volts(0.12),
                    Volts(0.6),
                )
                .unwrap()
            })
            .collect();
        let vmax = meps.iter().map(|m| m.vopt.volts()).fold(0.0, f64::max);
        let vmin = meps.iter().map(|m| m.vopt.volts()).fold(1.0, f64::min);
        let emax = meps.iter().map(|m| m.energy.value()).fold(0.0, f64::max);
        let emin = meps.iter().map(|m| m.energy.value()).fold(1.0, f64::min);
        let v_spread = (vmax - vmin) / vmin;
        let e_spread = (emax - emin) / emin;
        assert!((0.20..0.32).contains(&v_spread), "vopt spread {v_spread}");
        assert!((0.45..0.65).contains(&e_spread), "energy spread {e_spread}");
    }

    #[test]
    fn eval_variants_track_the_analytic_mep() {
        use crate::tabulate::{AnalyticEval, TabulatedEval, ACCURACY_BUDGET};
        let tech = Technology::st_130nm();
        let ring = CircuitProfile::ring_oscillator();
        let env = Environment::nominal();
        let direct = find_mep(&tech, &ring, env, Volts(0.12), Volts(0.6)).unwrap();

        // The analytic evaluator is the same math — bit-identical.
        let analytic = AnalyticEval::new(&tech);
        let via_eval = find_mep_eval(&analytic, &ring, env, Volts(0.12), Volts(0.6)).unwrap();
        assert_eq!(via_eval.vopt, direct.vopt);
        assert_eq!(via_eval.energy, direct.energy);

        // The tabulated evaluator lands within the accuracy budget.
        let tab = TabulatedEval::new(&tech);
        let t = find_mep_eval(&tab, &ring, env, Volts(0.12), Volts(0.6)).unwrap();
        let e_err = (t.energy.value() - direct.energy.value()).abs() / direct.energy.value();
        assert!(e_err < ACCURACY_BUDGET, "energy err {e_err}");
        assert!(
            (t.vopt.volts() - direct.vopt.volts()).abs() < 0.005,
            "vopt moved"
        );

        // Sweep variant agrees point-by-point within budget.
        let sa = energy_sweep(&tech, &ring, env, Volts(0.12), Volts(0.6), 24);
        let st = energy_sweep_eval(&tab, &ring, env, Volts(0.12), Volts(0.6), 24);
        assert_eq!(sa.len(), st.len());
        for (a, t) in sa.iter().zip(&st) {
            let err = (t.total().value() - a.total().value()).abs() / a.total().value();
            assert!(err < ACCURACY_BUDGET, "at {}: err {err}", a.vdd);
        }
    }

    #[test]
    #[should_panic(expected = "invalid voltage bracket")]
    fn rejects_inverted_bracket() {
        let (tech, profile) = fixture();
        let _ = find_mep(
            &tech,
            &profile,
            Environment::nominal(),
            Volts(0.9),
            Volts(0.2),
        );
    }
}
