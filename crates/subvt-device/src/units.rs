//! Strongly-typed physical quantities used throughout the stack.
//!
//! Every quantity is a thin newtype over `f64` in SI base units (volts,
//! seconds, amperes, farads, joules, hertz, kelvin). The newtypes follow
//! the `Miles`/`Kilometers` pattern of the Rust API guidelines
//! (C-NEWTYPE): they exist so a supply voltage can never be confused with
//! a threshold voltage expressed in millivolts, or a delay in
//! picoseconds with a period in nanoseconds.
//!
//! ```
//! use subvt_device::units::Volts;
//!
//! let vdd = Volts::from_millivolts(200.0);
//! assert!((vdd.volts() - 0.2).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared arithmetic surface for a scalar SI newtype.
macro_rules! si_scalar {
    ($name:ident, $unit:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value in SI base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// True when the underlying value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

si_scalar!(Volts, "V", "An electric potential in volts.");
si_scalar!(Seconds, "s", "A duration in seconds.");
si_scalar!(Amps, "A", "A current in amperes.");
si_scalar!(Farads, "F", "A capacitance in farads.");
si_scalar!(Joules, "J", "An energy in joules.");
si_scalar!(Hertz, "Hz", "A frequency in hertz.");
si_scalar!(Henries, "H", "An inductance in henries.");
si_scalar!(Ohms, "Ω", "A resistance in ohms.");
si_scalar!(Watts, "W", "A power in watts.");
si_scalar!(Kelvin, "K", "An absolute temperature in kelvin.");

impl Volts {
    /// Constructs a voltage from millivolts.
    ///
    /// ```
    /// # use subvt_device::units::Volts;
    /// assert_eq!(Volts::from_millivolts(18.75), Volts(0.01875));
    /// ```
    #[inline]
    pub fn from_millivolts(mv: f64) -> Volts {
        Volts(mv * 1e-3)
    }

    /// Returns the value in volts (alias of [`Volts::value`]).
    #[inline]
    pub fn volts(self) -> f64 {
        self.0
    }

    /// Returns the value in millivolts.
    #[inline]
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Seconds {
    /// Constructs a duration from picoseconds.
    #[inline]
    pub fn from_picos(ps: f64) -> Seconds {
        Seconds(ps * 1e-12)
    }

    /// Constructs a duration from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Seconds {
        Seconds(ns * 1e-9)
    }

    /// Constructs a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Seconds {
        Seconds(us * 1e-6)
    }

    /// Returns the value in seconds (alias of [`Seconds::value`]).
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Returns the value in picoseconds.
    #[inline]
    pub fn picos(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Reciprocal: frequency of a periodic event with this period.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    #[inline]
    pub fn to_frequency(self) -> Hertz {
        assert!(self.0 != 0.0, "cannot take frequency of a zero period");
        Hertz(1.0 / self.0)
    }
}

impl Hertz {
    /// Constructs a frequency from megahertz.
    #[inline]
    pub fn from_megahertz(mhz: f64) -> Hertz {
        Hertz(mhz * 1e6)
    }

    /// Period of a periodic event at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn to_period(self) -> Seconds {
        assert!(self.0 != 0.0, "cannot take period of zero frequency");
        Seconds(1.0 / self.0)
    }
}

impl Joules {
    /// Constructs an energy from femtojoules.
    #[inline]
    pub fn from_femtos(fj: f64) -> Joules {
        Joules(fj * 1e-15)
    }

    /// Returns the value in femtojoules (the natural unit of
    /// per-operation subthreshold energy; the paper's Figs. 1-2 are in
    /// units of 1e-15 J).
    #[inline]
    pub fn femtos(self) -> f64 {
        self.0 * 1e15
    }
}

impl Amps {
    /// Constructs a current from nanoamperes.
    #[inline]
    pub fn from_nanos(na: f64) -> Amps {
        Amps(na * 1e-9)
    }
}

impl Farads {
    /// Constructs a capacitance from femtofarads.
    #[inline]
    pub fn from_femtos(ff: f64) -> Farads {
        Farads(ff * 1e-15)
    }
}

impl Kelvin {
    /// Absolute zero expressed in degrees Celsius.
    pub const CELSIUS_OFFSET: f64 = 273.15;

    /// Constructs an absolute temperature from degrees Celsius.
    ///
    /// ```
    /// # use subvt_device::units::Kelvin;
    /// let t = Kelvin::from_celsius(25.0);
    /// assert!((t.value() - 298.15).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn from_celsius(celsius: f64) -> Kelvin {
        Kelvin(celsius + Kelvin::CELSIUS_OFFSET)
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    pub fn celsius(self) -> f64 {
        self.0 - Kelvin::CELSIUS_OFFSET
    }
}

// Cross-unit products that appear in the physics.

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Farads {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

si_scalar!(Coulombs, "C", "An electric charge in coulombs.");

impl Mul<Volts> for Coulombs {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Volts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Amps> for Coulombs {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Amps) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millivolt_round_trip() {
        let v = Volts::from_millivolts(218.75);
        assert!((v.millivolts() - 218.75).abs() < 1e-9);
        assert!((v.volts() - 0.21875).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Volts(1.0);
        let b = Volts(0.25);
        assert_eq!(a + b, Volts(1.25));
        assert_eq!(a - b, Volts(0.75));
        assert_eq!(a * 2.0, Volts(2.0));
        assert_eq!(2.0 * a, Volts(2.0));
        assert_eq!(a / 4.0, Volts(0.25));
        assert!((a / b - 4.0).abs() < 1e-12);
        assert_eq!(-b, Volts(-0.25));
    }

    #[test]
    fn assign_ops_accumulate() {
        let mut e = Joules::ZERO;
        e += Joules::from_femtos(1.5);
        e += Joules::from_femtos(0.5);
        assert!((e.femtos() - 2.0).abs() < 1e-9);
        e -= Joules::from_femtos(1.0);
        assert!((e.femtos() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = (0..4).map(|i| Joules::from_femtos(f64::from(i))).sum();
        assert!((total.femtos() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_conversion() {
        assert!((Kelvin::from_celsius(85.0).value() - 358.15).abs() < 1e-9);
        assert!((Kelvin(300.0).celsius() - 26.85).abs() < 1e-9);
    }

    #[test]
    fn period_frequency_round_trip() {
        let f = Hertz::from_megahertz(64.0);
        let t = f.to_period();
        assert!((t.nanos() - 15.625).abs() < 1e-9);
        assert!((t.to_frequency().value() - 64e6).abs() < 1e-3);
    }

    #[test]
    fn power_energy_products() {
        let p = Amps(2e-9) * Volts(0.3);
        assert!((p.value() - 0.6e-9).abs() < 1e-21);
        let e = p * Seconds::from_nanos(10.0);
        assert!((e.femtos() - 6.0e-3).abs() < 1e-9);
    }

    #[test]
    fn charge_products() {
        let q = Farads::from_femtos(10.0) * Volts(0.5);
        assert!((q.value() - 5e-15).abs() < 1e-27);
        let e = q * Volts(0.5);
        assert!((e.femtos() - 2.5).abs() < 1e-12);
        let t = q / Amps(1e-6);
        assert!((t.nanos() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Volts(0.2)), "0.2 V");
        assert_eq!(format!("{}", Ohms(50.0)), "50 Ω");
    }

    #[test]
    fn ordering_helpers() {
        let a = Seconds::from_nanos(1.0);
        let b = Seconds::from_nanos(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Seconds::from_nanos(5.0).clamp(a, b), b);
        assert!(Seconds(-1.0).abs() == Seconds(1.0));
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_frequency_panics() {
        let _ = Seconds::ZERO.to_frequency();
    }
}
