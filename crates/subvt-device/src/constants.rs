//! Physical constants and technology-wide reference values.

use crate::units::{Kelvin, Volts};

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Nominal reference temperature for the 0.13 µm process (25 °C).
pub const NOMINAL_CELSIUS: f64 = 25.0;

/// Nominal supply voltage of the 0.13 µm process, 1.2 V.
pub const NOMINAL_VDD: Volts = Volts(1.2);

/// The DC-DC converter resolution of the paper: 1.2 V / 2^6 = 18.75 mV.
pub const DCDC_LSB: Volts = Volts(1.2 / 64.0);

/// Number of bits in the paper's voltage code (Sec. II-A: "the number of
/// bits has been selected as 6").
pub const CODE_BITS: u32 = 6;

/// Number of code levels, 2^6 = 64.
pub const CODE_LEVELS: u32 = 1 << CODE_BITS;

/// Thermal voltage kT/q at an absolute temperature.
///
/// ```
/// # use subvt_device::constants::thermal_voltage;
/// # use subvt_device::units::Kelvin;
/// let ut = thermal_voltage(Kelvin::from_celsius(25.0));
/// assert!((ut.millivolts() - 25.69).abs() < 0.05);
/// ```
#[inline]
pub fn thermal_voltage(temperature: Kelvin) -> Volts {
    Volts(BOLTZMANN * temperature.value() / ELEMENTARY_CHARGE)
}

/// Returns the nominal reference temperature as an absolute temperature.
#[inline]
pub fn nominal_temperature() -> Kelvin {
    Kelvin::from_celsius(NOMINAL_CELSIUS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let ut = thermal_voltage(Kelvin(300.0));
        assert!((ut.millivolts() - 25.85).abs() < 0.05);
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        let a = thermal_voltage(Kelvin(300.0));
        let b = thermal_voltage(Kelvin(600.0));
        assert!((b.value() / a.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lsb_is_18_75_millivolts() {
        assert!((DCDC_LSB.millivolts() - 18.75).abs() < 1e-12);
        assert_eq!(CODE_LEVELS, 64);
    }
}
