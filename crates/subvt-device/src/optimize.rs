//! Small numerical-optimization toolbox.
//!
//! No analog/EDA crates exist in the ecosystem, so the fitting and
//! minimum-search routines the reproduction needs are implemented here:
//! a golden-section scalar minimizer (used to locate minimum-energy
//! points) and a Nelder-Mead simplex minimizer (used to calibrate the
//! device model against the paper's published silicon numbers).

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMinimum {
    /// Argument of the minimum.
    pub x: f64,
    /// Function value at the minimum.
    pub value: f64,
}

/// Minimizes a unimodal scalar function on `[lo, hi]` by golden-section
/// search, to within `tol` on the argument.
///
/// The search is robust to mildly non-unimodal functions because it is
/// seeded by a coarse grid scan that brackets the best grid point first.
///
/// The returned [`ScalarMinimum`] is the best *evaluated* sample — `f`
/// is never called again after the bracket converges, so callers that
/// need the objective at the optimum (e.g. the MEP search threading an
/// energy breakdown through) can capture it from their closure without
/// a redundant re-evaluation.
///
/// # Panics
///
/// Panics if `lo >= hi` or `tol <= 0`.
///
/// ```
/// # use subvt_device::optimize::golden_section;
/// let m = golden_section(|x| (x - 2.0) * (x - 2.0) + 1.0, 0.0, 5.0, 1e-9);
/// assert!((m.x - 2.0).abs() < 1e-6);
/// assert!((m.value - 1.0).abs() < 1e-9);
/// ```
pub fn golden_section<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, tol: f64) -> ScalarMinimum {
    assert!(lo < hi, "invalid bracket: lo {lo} >= hi {hi}");
    assert!(tol > 0.0, "tolerance must be positive");

    // Best-ever sample; strict `<` so the earliest of equal values wins
    // (keeps results independent of evaluation count).
    let mut best = ScalarMinimum {
        x: f64::NAN,
        value: f64::INFINITY,
    };
    let mut track = |x: f64, v: f64| {
        if v < best.value {
            best = ScalarMinimum { x, value: v };
        }
        v
    };

    // Coarse scan to bracket the global grid minimum.
    const GRID: usize = 64;
    let mut best_i = 0;
    let mut best_v = f64::INFINITY;
    for i in 0..=GRID {
        let x = lo + (hi - lo) * (i as f64) / (GRID as f64);
        let v = track(x, f(x));
        if v < best_v {
            best_v = v;
            best_i = i;
        }
    }
    let step = (hi - lo) / (GRID as f64);
    let mut a = (lo + step * (best_i as f64 - 1.0)).max(lo);
    let mut b = (lo + step * (best_i as f64 + 1.0)).min(hi);

    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = track(c, f(c));
    let mut fd = track(d, f(d));
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = track(c, f(c));
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = track(d, f(d));
        }
    }
    best
}

/// Options controlling the Nelder-Mead simplex search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum number of function evaluations.
    pub max_evals: usize,
    /// Terminates when the simplex's value spread falls below this.
    pub f_tol: f64,
    /// Initial simplex scale relative to each coordinate (absolute
    /// fallback `0.05` when a coordinate is zero).
    pub initial_scale: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> NelderMeadOptions {
        NelderMeadOptions {
            max_evals: 20_000,
            f_tol: 1e-12,
            initial_scale: 0.10,
        }
    }
}

/// Result of a Nelder-Mead minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexMinimum {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at the best point.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// Minimizes `f` over ℝⁿ starting from `x0` with the Nelder-Mead
/// simplex algorithm (standard reflection/expansion/contraction/shrink
/// coefficients 1, 2, ½, ½).
///
/// # Panics
///
/// Panics if `x0` is empty.
///
/// ```
/// # use subvt_device::optimize::{nelder_mead, NelderMeadOptions};
/// let rosenbrock = |x: &[f64]| {
///     (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
/// };
/// let m = nelder_mead(rosenbrock, &[-1.2, 1.0], NelderMeadOptions::default());
/// assert!((m.x[0] - 1.0).abs() < 1e-3 && (m.x[1] - 1.0).abs() < 1e-3);
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    options: NelderMeadOptions,
) -> SimplexMinimum {
    assert!(!x0.is_empty(), "cannot optimize over zero dimensions");
    let n = x0.len();
    let mut evals = 0usize;
    let eval = |f: &mut F, x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Build initial simplex.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = eval(&mut f, x0, &mut evals);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        let h = if x[i] != 0.0 {
            options.initial_scale * x[i].abs()
        } else {
            0.05
        };
        x[i] += h;
        let v = eval(&mut f, &x, &mut evals);
        simplex.push((x, v));
    }

    while evals < options.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < options.f_tol {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / (n as f64);
            }
        }

        let worst = simplex[n].clone();
        let second_worst_v = simplex[n - 1].1;
        let best_v = simplex[0].1;

        let lerp = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + t * (c - w))
                .collect()
        };

        // Reflection.
        let xr = lerp(1.0);
        let vr = eval(&mut f, &xr, &mut evals);
        if vr < best_v {
            // Expansion.
            let xe = lerp(2.0);
            let ve = eval(&mut f, &xe, &mut evals);
            simplex[n] = if ve < vr { (xe, ve) } else { (xr, vr) };
            continue;
        }
        if vr < second_worst_v {
            simplex[n] = (xr, vr);
            continue;
        }
        // Contraction (outside if reflected point improved on worst).
        let (xc, vc) = if vr < worst.1 {
            let xc = lerp(0.5);
            let vc = eval(&mut f, &xc, &mut evals);
            (xc, vc)
        } else {
            let xc = lerp(-0.5);
            let vc = eval(&mut f, &xc, &mut evals);
            (xc, vc)
        };
        if vc < worst.1.min(vr) {
            simplex[n] = (xc, vc);
            continue;
        }
        // Shrink toward the best point.
        let best_x = simplex[0].0.clone();
        for entry in simplex.iter_mut().skip(1) {
            let x: Vec<f64> = entry
                .0
                .iter()
                .zip(&best_x)
                .map(|(xi, bi)| bi + 0.5 * (xi - bi))
                .collect();
            let v = eval(&mut f, &x, &mut evals);
            *entry = (x, v);
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x, value) = simplex.swap_remove(0);
    SimplexMinimum { x, value, evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let m = golden_section(|x| (x - 0.22) * (x - 0.22), 0.05, 0.9, 1e-10);
        assert!((m.x - 0.22).abs() < 1e-7);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        let m = golden_section(|x| x, 1.0, 2.0, 1e-9);
        assert!((m.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_finds_global_of_two_dips() {
        // Two local minima; the coarse scan should bracket the deeper one.
        let f = |x: f64| (x - 1.0).powi(2).min((x - 4.0).powi(2) - 0.5);
        let m = golden_section(f, 0.0, 5.0, 1e-9);
        assert!((m.x - 4.0).abs() < 1e-5, "x = {}", m.x);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn golden_section_rejects_bad_bracket() {
        let _ = golden_section(|x| x, 2.0, 1.0, 1e-9);
    }

    #[test]
    fn golden_section_eval_budget_and_best_sample() {
        // 65 grid evals + 2 bracket seeds + one per golden iteration
        // (the bracket is (hi-lo)/32 wide and shrinks by φ⁻¹ ≈ 0.618
        // per step: ~22 iterations to 1e-6) — and, crucially, no final
        // re-evaluation at the midpoint.
        let mut samples: Vec<(f64, f64)> = Vec::new();
        let m = golden_section(
            |x| {
                let v = (x - 0.37) * (x - 0.37);
                samples.push((x, v));
                v
            },
            0.0,
            1.0,
            1e-6,
        );
        assert!(
            samples.len() <= 95,
            "eval count regressed: {}",
            samples.len()
        );
        // The result is one of the evaluated samples, and the best one.
        assert!(
            samples.iter().any(|&(x, v)| x == m.x && v == m.value),
            "result was not an evaluated sample"
        );
        let best = samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(m.value, best);
        assert!((m.x - 0.37).abs() < 1e-6);
    }

    #[test]
    fn nelder_mead_sphere() {
        let m = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[3.0, -2.0, 1.0],
            NelderMeadOptions::default(),
        );
        for xi in &m.x {
            assert!(xi.abs() < 1e-4, "x = {:?}", m.x);
        }
    }

    #[test]
    fn nelder_mead_rosenbrock_two_dim() {
        let m = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            NelderMeadOptions::default(),
        );
        assert!(m.value < 1e-6, "value {}", m.value);
    }

    #[test]
    fn nelder_mead_respects_eval_budget() {
        let mut count = 0usize;
        let opts = NelderMeadOptions {
            max_evals: 50,
            ..NelderMeadOptions::default()
        };
        let m = nelder_mead(
            |x| {
                count += 1;
                x[0] * x[0] + x[1] * x[1]
            },
            &[10.0, 10.0],
            opts,
        );
        assert!(m.evals <= 50 + 4, "evals {}", m.evals);
        assert_eq!(count, m.evals);
    }

    #[test]
    fn nelder_mead_handles_nan_objective() {
        // NaN regions are treated as +inf, so the search stays in the
        // valid region.
        let m = nelder_mead(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[2.0],
            NelderMeadOptions::default(),
        );
        assert!((m.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_zero_start_coordinate() {
        let m = nelder_mead(
            |x| (x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        );
        assert!((m.x[0] - 0.5).abs() < 1e-4 && (m.x[1] + 0.5).abs() < 1e-4);
    }
}
