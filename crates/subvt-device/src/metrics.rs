//! Process-global instrumentation counters for the device-model hot
//! path.
//!
//! The tabulation layer ([`crate::tabulate`]) exists to cut the number
//! of analytic EKV evaluations per Monte-Carlo die; these counters make
//! that claim measurable. Every analytic [`crate::delay::GateTiming`]
//! delay and [`crate::energy::energy_per_cycle`] call bumps a counter,
//! as does every interpolated table hit, exact-eval fallback, table
//! build and memo-cache hit.
//!
//! The counters are process-global relaxed atomics: they never affect
//! results (the determinism contract is untouched), they only observe.
//! `cargo test` runs many tests in one process, so unit tests assert on
//! *deltas* being at least the expected count rather than exact values;
//! exact zero-analytic assertions live in a dedicated single-test
//! integration binary.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static ANALYTIC_DELAY_EVALS: AtomicU64 = AtomicU64::new(0);
static ANALYTIC_ENERGY_EVALS: AtomicU64 = AtomicU64::new(0);
static INTERP_DELAY_HITS: AtomicU64 = AtomicU64::new(0);
static INTERP_ENERGY_HITS: AtomicU64 = AtomicU64::new(0);
static EXACT_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static TABLE_BUILDS: AtomicU64 = AtomicU64::new(0);
static TABLE_BUILD_NANOS: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn record_analytic_delay() {
    ANALYTIC_DELAY_EVALS.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` analytic delay evaluations in one atomic bump — the
/// lane kernels price a whole batch of dies per call and must keep the
/// analytic/tabulated query totals comparable with the scalar path.
#[inline]
pub(crate) fn record_analytic_delays(n: u64) {
    ANALYTIC_DELAY_EVALS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_analytic_energy() {
    ANALYTIC_ENERGY_EVALS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_interp_delay_hit() {
    INTERP_DELAY_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` interpolation-served delay queries in one atomic bump —
/// the fused pair query answers two gate kinds per interpolation and
/// sits on the Monte-Carlo hot path.
#[inline]
pub(crate) fn record_interp_delay_hits(n: u64) {
    INTERP_DELAY_HITS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_interp_energy_hit() {
    INTERP_ENERGY_HITS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_exact_fallback() {
    EXACT_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_table_build(nanos: u64) {
    TABLE_BUILDS.fetch_add(1, Ordering::Relaxed);
    TABLE_BUILD_NANOS.fetch_add(nanos, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time copy of every device-model counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Analytic gate-delay evaluations (each costs two EKV currents).
    pub analytic_delay_evals: u64,
    /// Analytic energy-breakdown evaluations (each also performs one
    /// analytic gate delay internally, which double-counts above —
    /// intentionally, since both really ran).
    pub analytic_energy_evals: u64,
    /// Delay queries answered from an interpolated surface.
    pub interp_delay_hits: u64,
    /// Energy queries answered from an interpolated surface.
    pub interp_energy_hits: u64,
    /// Queries outside the tabulated grid that fell back to the exact
    /// analytic model.
    pub exact_fallbacks: u64,
    /// Number of surface-grid builds.
    pub table_builds: u64,
    /// Total wall time spent building surface grids, in nanoseconds.
    pub table_build_nanos: u64,
    /// Memoized per-die cache hits ([`crate::tabulate::CachedEval`]).
    pub cache_hits: u64,
}

impl MetricsSnapshot {
    /// Reads the current counter values.
    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            analytic_delay_evals: ANALYTIC_DELAY_EVALS.load(Ordering::Relaxed),
            analytic_energy_evals: ANALYTIC_ENERGY_EVALS.load(Ordering::Relaxed),
            interp_delay_hits: INTERP_DELAY_HITS.load(Ordering::Relaxed),
            interp_energy_hits: INTERP_ENERGY_HITS.load(Ordering::Relaxed),
            exact_fallbacks: EXACT_FALLBACKS.load(Ordering::Relaxed),
            table_builds: TABLE_BUILDS.load(Ordering::Relaxed),
            table_build_nanos: TABLE_BUILD_NANOS.load(Ordering::Relaxed),
            cache_hits: CACHE_HITS.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (for single-process tools that want
    /// to report per-phase numbers).
    pub fn reset() {
        ANALYTIC_DELAY_EVALS.store(0, Ordering::Relaxed);
        ANALYTIC_ENERGY_EVALS.store(0, Ordering::Relaxed);
        INTERP_DELAY_HITS.store(0, Ordering::Relaxed);
        INTERP_ENERGY_HITS.store(0, Ordering::Relaxed);
        EXACT_FALLBACKS.store(0, Ordering::Relaxed);
        TABLE_BUILDS.store(0, Ordering::Relaxed);
        TABLE_BUILD_NANOS.store(0, Ordering::Relaxed);
        CACHE_HITS.store(0, Ordering::Relaxed);
    }

    /// Counter-wise difference against an earlier snapshot.
    ///
    /// Saturates at zero so a concurrent `reset` cannot produce a
    /// bogus huge delta.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            analytic_delay_evals: self
                .analytic_delay_evals
                .saturating_sub(earlier.analytic_delay_evals),
            analytic_energy_evals: self
                .analytic_energy_evals
                .saturating_sub(earlier.analytic_energy_evals),
            interp_delay_hits: self
                .interp_delay_hits
                .saturating_sub(earlier.interp_delay_hits),
            interp_energy_hits: self
                .interp_energy_hits
                .saturating_sub(earlier.interp_energy_hits),
            exact_fallbacks: self.exact_fallbacks.saturating_sub(earlier.exact_fallbacks),
            table_builds: self.table_builds.saturating_sub(earlier.table_builds),
            table_build_nanos: self
                .table_build_nanos
                .saturating_sub(earlier.table_build_nanos),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
        }
    }

    /// Total analytic model evaluations (delay + energy).
    pub fn analytic_evals(&self) -> u64 {
        self.analytic_delay_evals + self.analytic_energy_evals
    }

    /// Total interpolated table hits (delay + energy).
    pub fn interp_hits(&self) -> u64 {
        self.interp_delay_hits + self.interp_energy_hits
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analytic evals {} (delay {}, energy {}) · interp hits {} \
             (delay {}, energy {}) · exact fallbacks {} · cache hits {} · \
             table builds {} ({:.1} ms)",
            self.analytic_evals(),
            self.analytic_delay_evals,
            self.analytic_energy_evals,
            self.interp_hits(),
            self.interp_delay_hits,
            self.interp_energy_hits,
            self.exact_fallbacks,
            self.cache_hits,
            self.table_builds,
            self.table_build_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let before = MetricsSnapshot::snapshot();
        record_analytic_delay();
        record_analytic_energy();
        record_interp_delay_hit();
        record_interp_energy_hit();
        record_exact_fallback();
        record_cache_hit();
        record_table_build(1_000);
        let delta = MetricsSnapshot::snapshot().since(&before);
        // Other tests in this process may bump the counters too, so
        // assert on at-least deltas.
        assert!(delta.analytic_delay_evals >= 1);
        assert!(delta.analytic_energy_evals >= 1);
        assert!(delta.interp_delay_hits >= 1);
        assert!(delta.interp_energy_hits >= 1);
        assert!(delta.exact_fallbacks >= 1);
        assert!(delta.cache_hits >= 1);
        assert!(delta.table_builds >= 1);
        assert!(delta.table_build_nanos >= 1_000);
        assert!(delta.analytic_evals() >= 2);
        assert!(delta.interp_hits() >= 2);
    }

    #[test]
    fn display_names_every_counter_family() {
        let s = format!("{}", MetricsSnapshot::snapshot());
        assert!(s.contains("analytic evals"), "{s}");
        assert!(s.contains("interp hits"), "{s}");
        assert!(s.contains("fallbacks"), "{s}");
        assert!(s.contains("table builds"), "{s}");
    }
}
