//! The converter's off-chip LC output filter as an ODE system.
//!
//! Paper Sec. III: "The average voltage is dependent on the low pass
//! filter consisting of external components L and C."
//!
//! State vector: `y = [i_L (A), v_out (V)]` with
//!
//! ```text
//! di_L/dt  = (v_sw − i_L·(r_src + DCR) − v_out) / L
//! dv_out/dt = (i_L − i_load(v_out)) / C
//! ```
//!
//! where `(v_sw, r_src)` is the power stage's Thevenin equivalent for
//! the current PWM level.

use std::fmt;

use subvt_device::units::{Amps, Farads, Henries, Ohms, Volts};
use subvt_sim::analog::OdeSystem;

/// A load seen by the converter output.
///
/// `Send + Sync` so a converter (and anything holding one, like a
/// switched-supply controller) can be built and run on `subvt-exec`
/// worker threads.
pub trait LoadCurrent: fmt::Debug + Send + Sync {
    /// Current drawn at output voltage `v`.
    fn current(&self, v: Volts) -> Amps;

    /// If the load is affine over the converter's operating range
    /// (`v ≥ 0`), the coefficients `(g, i0)` of `i(v) = g·v + i0`;
    /// `None` for genuinely nonlinear loads.
    ///
    /// Affine loads get exact cached closed-form segment updates from
    /// [`crate::solver::SegmentSolver`]; nonlinear loads fall back to
    /// per-segment linearisation with a step-halving error bound.
    fn affine(&self) -> Option<(f64, f64)> {
        None
    }
}

/// An open-circuit output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoLoad;

impl LoadCurrent for NoLoad {
    fn current(&self, _v: Volts) -> Amps {
        Amps::ZERO
    }

    fn affine(&self) -> Option<(f64, f64)> {
        Some((0.0, 0.0))
    }
}

/// A resistive load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistiveLoad(pub Ohms);

impl LoadCurrent for ResistiveLoad {
    fn current(&self, v: Volts) -> Amps {
        Amps(v.volts() / self.0.value())
    }

    fn affine(&self) -> Option<(f64, f64)> {
        Some((1.0 / self.0.value(), 0.0))
    }
}

/// A constant-current sink (clamped to zero below 0 V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLoad(pub Amps);

impl LoadCurrent for ConstantLoad {
    fn current(&self, v: Volts) -> Amps {
        if v.volts() > 0.0 {
            self.0
        } else {
            Amps::ZERO
        }
    }

    fn affine(&self) -> Option<(f64, f64)> {
        // The sub-zero clamp only matters for a few nanovolts around
        // start-up; treating the sink as affine stays far inside the
        // solver's accuracy budget.
        Some((0.0, self.0.value()))
    }
}

/// Passive values of the output filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterParams {
    /// Output inductance.
    pub inductance: Henries,
    /// Output capacitance.
    pub capacitance: Farads,
    /// Inductor series resistance (DCR).
    pub dcr: Ohms,
}

impl Default for FilterParams {
    fn default() -> FilterParams {
        // Chosen so the 1 MHz PWM ripple stays well below one
        // 18.75 mV LSB while settling within a few tens of system
        // cycles (ζ ≈ 0.5 with the power-stage resistance in series).
        FilterParams {
            inductance: Henries(22e-6),
            capacitance: Farads(470e-9),
            dcr: Ohms(2.0),
        }
    }
}

impl FilterParams {
    /// Natural (undamped) resonance frequency of the filter in hertz.
    pub fn natural_frequency(&self) -> f64 {
        1.0 / (std::f64::consts::TAU * (self.inductance.value() * self.capacitance.value()).sqrt())
    }
}

/// The buck output filter with its driving Thevenin source.
#[derive(Debug)]
pub struct BuckFilter {
    params: FilterParams,
    /// Thevenin source voltage of the power stage (set per PWM tick).
    pub source_voltage: Volts,
    /// Thevenin source resistance of the power stage.
    pub source_resistance: Ohms,
    load: Box<dyn LoadCurrent>,
}

impl BuckFilter {
    /// Index of the inductor current in the state vector.
    pub const STATE_CURRENT: usize = 0;
    /// Index of the output voltage in the state vector.
    pub const STATE_VOUT: usize = 1;

    /// Creates a filter driven into `load`.
    ///
    /// # Panics
    ///
    /// Panics unless L and C are positive.
    pub fn new(params: FilterParams, load: Box<dyn LoadCurrent>) -> BuckFilter {
        assert!(
            params.inductance.value() > 0.0 && params.capacitance.value() > 0.0,
            "L and C must be positive"
        );
        BuckFilter {
            params,
            source_voltage: Volts::ZERO,
            source_resistance: Ohms(1e9),
            load,
        }
    }

    /// Filter passives.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// The attached load.
    pub fn load(&self) -> &dyn LoadCurrent {
        self.load.as_ref()
    }

    /// Replaces the load (e.g. when the workload changes).
    pub fn set_load(&mut self, load: Box<dyn LoadCurrent>) {
        self.load = load;
    }

    /// Restores the Thevenin source to its as-constructed (high-Z,
    /// zero-volt) state, keeping the passives and the attached load.
    pub fn reset_source(&mut self) {
        self.source_voltage = Volts::ZERO;
        self.source_resistance = Ohms(1e9);
    }

    /// Instantaneous conduction-loss power for a state vector.
    pub fn conduction_loss(&self, y: &[f64]) -> f64 {
        let i = y[Self::STATE_CURRENT];
        i * i * (self.source_resistance.value() + self.params.dcr.value())
    }
}

impl OdeSystem for BuckFilter {
    fn dim(&self) -> usize {
        2
    }

    fn derivatives(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let i_l = y[Self::STATE_CURRENT];
        let v_out = y[Self::STATE_VOUT];
        let r = self.source_resistance.value() + self.params.dcr.value();
        dydt[Self::STATE_CURRENT] =
            (self.source_voltage.volts() - i_l * r - v_out) / self.params.inductance.value();
        dydt[Self::STATE_VOUT] =
            (i_l - self.load.current(Volts(v_out)).value()) / self.params.capacitance.value();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_sim::analog::{integrate_span, IntegrationMethod};

    #[test]
    fn loads_draw_expected_current() {
        assert_eq!(NoLoad.current(Volts(0.5)), Amps::ZERO);
        let r = ResistiveLoad(Ohms(1000.0));
        assert!((r.current(Volts(0.5)).value() - 0.5e-3).abs() < 1e-12);
        let c = ConstantLoad(Amps(1e-6));
        assert_eq!(c.current(Volts(0.5)).value(), 1e-6);
        assert_eq!(c.current(Volts(-0.1)).value(), 0.0);
    }

    #[test]
    fn dc_steady_state_follows_source() {
        // Constant source: v_out settles to v_src (minus IR drop with a
        // resistive load).
        let mut f = BuckFilter::new(FilterParams::default(), Box::new(ResistiveLoad(Ohms(1e4))));
        f.source_voltage = Volts(0.6);
        f.source_resistance = Ohms(5.0);
        let mut y = [0.0, 0.0];
        // 200 µs is >> the settle time.
        integrate_span(&f, IntegrationMethod::Rk4, 0.0, &mut y, 200e-6, 200_000);
        let expected = 0.6 * 1e4 / (1e4 + 7.0);
        assert!(
            (y[BuckFilter::STATE_VOUT] - expected).abs() < 1e-3,
            "vout {} vs {expected}",
            y[1]
        );
        let i_expected = expected / 1e4;
        assert!((y[BuckFilter::STATE_CURRENT] - i_expected).abs() < 1e-6);
    }

    #[test]
    fn natural_frequency_of_defaults() {
        let f0 = FilterParams::default().natural_frequency();
        assert!((4e4..8e4).contains(&f0), "f0 = {f0} Hz");
    }

    #[test]
    fn response_is_reasonably_damped() {
        // With the power-stage resistance in series, overshoot must be
        // modest (no multi-cycle ringing that would confuse the
        // up/down comparator).
        let mut f = BuckFilter::new(FilterParams::default(), Box::new(NoLoad));
        f.source_voltage = Volts(0.356);
        f.source_resistance = Ohms(5.0);
        let mut y = [0.0, 0.0];
        let mut peak: f64 = 0.0;
        for _ in 0..400 {
            integrate_span(&f, IntegrationMethod::Rk4, 0.0, &mut y, 0.5e-6, 100);
            peak = peak.max(y[BuckFilter::STATE_VOUT]);
        }
        assert!(peak < 0.356 * 1.25, "overshoot too large: {peak}");
        assert!((y[BuckFilter::STATE_VOUT] - 0.356).abs() < 2e-3);
    }

    #[test]
    fn conduction_loss_is_quadratic_in_current() {
        let mut f = BuckFilter::new(FilterParams::default(), Box::new(NoLoad));
        f.source_resistance = Ohms(5.0);
        let p1 = f.conduction_loss(&[0.01, 0.3]);
        let p2 = f.conduction_loss(&[0.02, 0.3]);
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
        assert!((p1 - 0.0001 * 7.0).abs() < 1e-12);
    }

    #[test]
    fn load_swap() {
        let mut f = BuckFilter::new(FilterParams::default(), Box::new(NoLoad));
        assert_eq!(f.load().current(Volts(1.0)).value(), 0.0);
        f.set_load(Box::new(ConstantLoad(Amps(2e-6))));
        assert_eq!(f.load().current(Volts(1.0)).value(), 2e-6);
    }

    #[test]
    #[should_panic(expected = "L and C must be positive")]
    fn zero_inductance_rejected() {
        let _ = BuckFilter::new(
            FilterParams {
                inductance: Henries(0.0),
                ..FilterParams::default()
            },
            Box::new(NoLoad),
        );
    }
}
