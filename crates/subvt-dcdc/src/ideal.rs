//! An ideal (instantaneous, lossless) converter model.
//!
//! Used as the reference for converter-accuracy experiments and to run
//! long energy studies where the switched LC dynamics are irrelevant.

use subvt_device::constants::DCDC_LSB;
use subvt_device::units::Volts;
use subvt_digital::lut::VoltageWord;

/// An ideal DC-DC converter: the output steps instantly to
/// `word × 18.75 mV` with no ripple or loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdealConverter {
    word: VoltageWord,
    trim: i16,
}

impl IdealConverter {
    /// Creates an ideal converter at word 0 (output off).
    pub fn new() -> IdealConverter {
        IdealConverter { word: 0, trim: 0 }
    }

    /// Loads a voltage word.
    pub fn set_word(&mut self, word: VoltageWord) {
        self.word = word.min(63);
    }

    /// Current word.
    pub fn word(&self) -> VoltageWord {
        self.word
    }

    /// Applies a ±LSB trim on top of the word (the comparator loop).
    pub fn set_trim(&mut self, trim: i16) {
        self.trim = trim;
    }

    /// Current trim.
    pub fn trim(&self) -> i16 {
        self.trim
    }

    /// Output voltage: `(word + trim) × 18.75 mV`, clamped to 0–1.2 V.
    pub fn vout(&self) -> Volts {
        let code = (i16::from(self.word) + self.trim).clamp(0, 63);
        DCDC_LSB * f64::from(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_word_times_lsb() {
        let mut c = IdealConverter::new();
        assert_eq!(c.vout(), Volts::ZERO);
        c.set_word(19);
        assert!((c.vout().millivolts() - 356.25).abs() < 1e-9);
        c.set_word(64);
        assert_eq!(c.word(), 63);
    }

    #[test]
    fn trim_shifts_by_lsbs() {
        let mut c = IdealConverter::new();
        c.set_word(12);
        c.set_trim(1);
        assert!((c.vout().millivolts() - 243.75).abs() < 1e-9);
        c.set_trim(-2);
        assert!((c.vout().millivolts() - 187.5).abs() < 1e-9);
        assert_eq!(c.trim(), -2);
    }

    #[test]
    fn trim_clamps_at_range() {
        let mut c = IdealConverter::new();
        c.set_word(63);
        c.set_trim(10);
        assert!((c.vout().volts() - 1.2 * 63.0 / 64.0).abs() < 1e-9);
        c.set_word(0);
        c.set_trim(-5);
        assert_eq!(c.vout(), Volts::ZERO);
    }
}
