//! The all-digital DC-DC converter: PWM + power transistor array + LC
//! filter, producing any Vdd in 0–1.2 V at a resolution of
//! 1.2 V / 2⁶ = 18.75 mV (paper Secs. III-IV).
//!
//! The converter runs feed-forward from the 6-bit voltage word (the
//! paper loads the rate-controller word straight into the PWM duty
//! register); closed-loop ±1 LSB trimming through the TDC comparator is
//! assembled on top of this type by `subvt-core`.

use std::fmt;

use subvt_device::constants::DCDC_LSB;
use subvt_device::units::{Hertz, Joules, Seconds, Volts};
use subvt_digital::lut::VoltageWord;
use subvt_digital::pwm::PwmGenerator;
use subvt_sim::analog::{integrate_span, IntegrationMethod};
use subvt_sim::logic::Logic;
use subvt_sim::time::{SimDuration, SimTime};
use subvt_sim::trace::AnalogTrace;

use crate::filter::{BuckFilter, FilterParams, LoadCurrent};
use crate::power_stage::{PowerStageParams, PowerTransistorArray};
use crate::solver::{SegmentSolver, SolverMode};

/// Converter-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConverterParams {
    /// Battery / input voltage (the paper's 1.2 V rail).
    pub vbat: Volts,
    /// Fast clock driving the PWM counter (the paper's 64 MHz).
    pub clock: Hertz,
    /// PWM counter width in bits (the paper's 6 → 1 MHz PWM period).
    pub pwm_bits: u8,
    /// Analog integration sub-steps per clock tick (RK4 mode only).
    pub substeps: u32,
    /// Filter integration strategy; `ClosedForm` (the default) takes
    /// one exact affine step per PWM segment, `Rk4` is the reference.
    pub solver: SolverMode,
    /// Power-stage array configuration.
    pub stage: PowerStageParams,
    /// Output filter passives.
    pub filter: FilterParams,
}

impl Default for ConverterParams {
    fn default() -> ConverterParams {
        ConverterParams {
            vbat: Volts(1.2),
            clock: Hertz::from_megahertz(64.0),
            pwm_bits: 6,
            substeps: 2,
            solver: SolverMode::default(),
            stage: PowerStageParams::default(),
            filter: FilterParams::default(),
        }
    }
}

impl ConverterParams {
    /// The same configuration with a different solver mode.
    pub fn with_solver(self, solver: SolverMode) -> ConverterParams {
        ConverterParams { solver, ..self }
    }
}

/// Modulation strategy at light load.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ModulationMode {
    /// Always switch (synchronous buck). Simple, but the ripple
    /// current burns conduction and gate-charge loss even at no load.
    #[default]
    ForcedCcm,
    /// Pulse skipping (PFM burst mode): whenever the output is above
    /// target at the start of a PWM period, the whole period is
    /// skipped with both switches off — the classic light-load fix the
    /// efficiency study motivates.
    PulseSkipping,
}

/// The simulated all-digital DC-DC converter.
#[derive(Debug)]
pub struct DcDcConverter {
    params: ConverterParams,
    pwm: PwmGenerator,
    array: PowerTransistorArray,
    filter: BuckFilter,
    solver: SegmentSolver,
    state: [f64; 2],
    now: SimTime,
    tick_period: SimDuration,
    conduction_energy: f64,
    switch_events: u64,
    trace: Option<AnalogTrace>,
    mode: ModulationMode,
    skipping_this_period: bool,
    skipped_periods: u64,
    at_period_start: bool,
}

impl DcDcConverter {
    /// Creates a converter driving `load`, initially shut down
    /// (word 0, output at 0 V).
    pub fn new(params: ConverterParams, load: Box<dyn LoadCurrent>) -> DcDcConverter {
        let pwm = PwmGenerator::new(params.pwm_bits);
        let array = PowerTransistorArray::new(params.stage);
        let filter = BuckFilter::new(params.filter, load);
        let solver = SegmentSolver::new(params.filter, params.clock);
        let tick_period = SimDuration::from_seconds(1.0 / params.clock.value());
        let mut c = DcDcConverter {
            params,
            pwm,
            array,
            filter,
            solver,
            state: [0.0, 0.0],
            now: SimTime::ZERO,
            tick_period,
            conduction_energy: 0.0,
            switch_events: 0,
            trace: None,
            mode: ModulationMode::ForcedCcm,
            skipping_this_period: false,
            skipped_periods: 0,
            at_period_start: true,
        };
        c.pwm.shutdown();
        c
    }

    /// Rewinds the converter to its as-constructed state — shut down,
    /// output at 0 V, time zero, counters cleared — while keeping the
    /// attached load and the solver's Φ(h) segment cache. Batch sweeps
    /// (e.g. the switched-supply word×trim table) reuse one converter
    /// across many settles: every cached Φ entry is a pure function of
    /// the segment's (source, duty, step) geometry, so a reset-then-run
    /// trajectory is bit-identical to a fresh converter's.
    pub fn reset_transient(&mut self) {
        self.pwm.reset();
        self.pwm.shutdown();
        self.array = PowerTransistorArray::new(self.params.stage);
        self.filter.reset_source();
        self.state = [0.0, 0.0];
        self.now = SimTime::ZERO;
        self.conduction_energy = 0.0;
        self.switch_events = 0;
        self.trace = None;
        self.mode = ModulationMode::ForcedCcm;
        self.skipping_this_period = false;
        self.skipped_periods = 0;
        self.at_period_start = true;
    }

    /// The configuration.
    pub fn params(&self) -> ConverterParams {
        self.params
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current output voltage.
    pub fn vout(&self) -> Volts {
        Volts(self.state[BuckFilter::STATE_VOUT])
    }

    /// Current inductor current (A).
    pub fn inductor_current(&self) -> f64 {
        self.state[BuckFilter::STATE_CURRENT]
    }

    /// The loaded duty value (equals the voltage word, clamped to the
    /// PWM guard band).
    pub fn duty(&self) -> u64 {
        self.pwm.duty()
    }

    /// Ideal (lossless) output for a word: `word × 18.75 mV`.
    pub fn ideal_vout(word: VoltageWord) -> Volts {
        DCDC_LSB * f64::from(word)
    }

    /// Loads a 6-bit voltage word into the duty register.
    pub fn set_word(&mut self, word: VoltageWord) {
        if word == 0 {
            self.pwm.shutdown();
        } else {
            self.pwm.load_duty(u64::from(word));
        }
    }

    /// Loads a raw duty value (used by the ±1 trim loop, which may move
    /// one LSB beyond the word).
    pub fn set_duty(&mut self, duty: u64) {
        if duty == 0 {
            self.pwm.shutdown();
        } else {
            self.pwm.load_duty(duty);
        }
    }

    /// Selects power-array groups for a workload fraction.
    pub fn select_workload(&mut self, fraction: f64) {
        self.array.select_for_workload(fraction);
    }

    /// Replaces the load.
    pub fn set_load(&mut self, load: Box<dyn LoadCurrent>) {
        self.filter.set_load(load);
    }

    /// Total conduction energy dissipated in the stage + DCR so far.
    pub fn conduction_energy(&self) -> Joules {
        Joules(self.conduction_energy)
    }

    /// Total PWM switch transitions so far (for switching-loss
    /// estimates).
    pub fn switch_events(&self) -> u64 {
        self.switch_events
    }

    /// Selects the light-load modulation mode.
    pub fn set_mode(&mut self, mode: ModulationMode) {
        self.mode = mode;
    }

    /// The modulation mode in force.
    pub fn mode(&self) -> ModulationMode {
        self.mode
    }

    /// PWM periods skipped so far (pulse-skipping mode only).
    pub fn skipped_periods(&self) -> u64 {
        self.skipped_periods
    }

    /// Enables output-voltage tracing (one sample per clock tick).
    pub fn enable_trace(&mut self, name: impl Into<String>) {
        self.trace = Some(AnalogTrace::new(name));
    }

    /// The recorded output trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&AnalogTrace> {
        self.trace.as_ref()
    }

    /// Takes the recorded trace out of the converter.
    pub fn take_trace(&mut self) -> Option<AnalogTrace> {
        self.trace.take()
    }

    /// Advances one 64 MHz clock tick: updates the PWM level, applies
    /// the power-stage Thevenin source, and integrates the filter.
    /// Returns `true` on the PWM terminal count (end of a system
    /// cycle).
    pub fn tick(&mut self) -> bool {
        // Pulse-skipping decision, latched at each period boundary.
        if self.at_period_start {
            let target = Self::ideal_vout(self.duty().min(63) as u8).volts();
            self.skipping_this_period = self.mode == ModulationMode::PulseSkipping
                && self.state[BuckFilter::STATE_VOUT] >= target
                && self.duty() > 0;
            if self.skipping_this_period {
                self.skipped_periods += 1;
            }
            self.at_period_start = false;
        }
        let (level, terminal) = self.pwm.tick();
        if terminal {
            self.at_period_start = true;
        }
        if self.skipping_this_period {
            // Both switches off: the inductor current collapses through
            // the (modelled) body diodes far faster than a tick, so it
            // is clamped and only the output capacitor discharges into
            // the load. Integrating the high-Z state explicitly would
            // make the ODE stiff; the reduced model is exact for i_L=0.
            let dt = self.tick_period.as_seconds();
            let c = self.params.filter.capacitance.value();
            let vout = self.state[BuckFilter::STATE_VOUT];
            let i_load = self
                .filter
                .load()
                .current(subvt_device::units::Volts(vout))
                .value();
            self.state[BuckFilter::STATE_CURRENT] = 0.0;
            self.state[BuckFilter::STATE_VOUT] = (vout - i_load * dt / c).max(0.0);
            self.now += self.tick_period;
            if let Some(trace) = &mut self.trace {
                trace.push(self.now, self.state[BuckFilter::STATE_VOUT]);
            }
            return terminal;
        }
        let (v_src, r_src) = self.array.thevenin(level, self.params.vbat);
        if self.filter.source_voltage != v_src {
            self.switch_events += 1;
        }
        self.filter.source_voltage = v_src;
        self.filter.source_resistance = r_src;

        let dt = self.tick_period.as_seconds();
        match self.params.solver {
            SolverMode::Rk4 => {
                // Trapezoid on the conduction loss over the tick.
                let loss_before = self.filter.conduction_loss(&self.state);
                integrate_span(
                    &self.filter,
                    IntegrationMethod::Rk4,
                    self.now.as_seconds(),
                    &mut self.state,
                    dt,
                    self.params.substeps as usize,
                );
                let loss_after = self.filter.conduction_loss(&self.state);
                self.conduction_energy += 0.5 * (loss_before + loss_after) * dt;
            }
            SolverMode::ClosedForm => {
                let q = self.solver.advance(
                    &mut self.state,
                    v_src.volts(),
                    r_src.value(),
                    self.filter.load(),
                    1,
                );
                self.conduction_energy += q * (r_src.value() + self.params.filter.dcr.value());
            }
        }

        self.now += self.tick_period;
        if let Some(trace) = &mut self.trace {
            trace.push(self.now, self.state[BuckFilter::STATE_VOUT]);
        }
        terminal
    }

    /// Runs `n` clock ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Runs until `n` PWM terminal counts (system cycles) have elapsed.
    ///
    /// In `ClosedForm` mode with tracing off and the PWM at a period
    /// boundary this is event-driven: each PWM period advances in one
    /// on-segment and one off-segment affine update instead of 64
    /// per-tick integrations. Otherwise it falls back to the tick loop
    /// (which per-tick stepping keeps exact in `ClosedForm` mode too).
    pub fn run_system_cycles(&mut self, n: u64) {
        if self.params.solver == SolverMode::ClosedForm
            && self.trace.is_none()
            && self.pwm.phase() == 0
        {
            for _ in 0..n {
                self.run_period_segments();
            }
            return;
        }
        let mut remaining = n;
        while remaining > 0 {
            if self.tick() {
                remaining -= 1;
            }
        }
    }

    /// Advances exactly one PWM period by closed-form segment updates.
    ///
    /// Requires the PWM counter to sit at phase 0. Replicates the tick
    /// loop's observable bookkeeping: the pulse-skip decision at the
    /// period boundary, switch-event counting at each source change,
    /// and conduction-energy accumulation.
    fn run_period_segments(&mut self) {
        debug_assert_eq!(
            self.pwm.phase(),
            0,
            "segment stepping needs a period boundary"
        );
        let levels = self.pwm.levels();
        let duty = self.pwm.duty();
        let target = Self::ideal_vout(duty.min(63) as u8).volts();
        let skipping = self.mode == ModulationMode::PulseSkipping
            && self.state[BuckFilter::STATE_VOUT] >= target
            && duty > 0;
        if skipping {
            self.skipped_periods += 1;
            self.state[BuckFilter::STATE_CURRENT] = 0.0;
            self.state[BuckFilter::STATE_VOUT] = self.solver.discharge(
                self.state[BuckFilter::STATE_VOUT],
                self.filter.load(),
                levels as u32,
            );
        } else {
            let dcr = self.params.filter.dcr.value();
            if duty > 0 {
                let (v_on, r_on) = self
                    .array
                    .thevenin(Logic::from_bool(true), self.params.vbat);
                if self.filter.source_voltage != v_on {
                    self.switch_events += 1;
                }
                self.filter.source_voltage = v_on;
                self.filter.source_resistance = r_on;
                let q = self.solver.advance(
                    &mut self.state,
                    v_on.volts(),
                    r_on.value(),
                    self.filter.load(),
                    duty as u32,
                );
                self.conduction_energy += q * (r_on.value() + dcr);
            }
            if duty < levels {
                let (v_off, r_off) = self
                    .array
                    .thevenin(Logic::from_bool(false), self.params.vbat);
                if self.filter.source_voltage != v_off {
                    self.switch_events += 1;
                }
                self.filter.source_voltage = v_off;
                self.filter.source_resistance = r_off;
                let q = self.solver.advance(
                    &mut self.state,
                    v_off.volts(),
                    r_off.value(),
                    self.filter.load(),
                    (levels - duty) as u32,
                );
                self.conduction_energy += q * (r_off.value() + dcr);
            }
        }
        self.now += self.tick_period * levels;
        self.at_period_start = true;
    }

    /// Duration of one system cycle (one full PWM period).
    pub fn system_cycle(&self) -> Seconds {
        Seconds(self.pwm.levels() as f64 / self.params.clock.value())
    }
}

impl fmt::Display for DcDcConverter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dc-dc @ {}: duty {}/{}, vout {:.1} mV",
            self.now,
            self.pwm.duty(),
            self.pwm.levels(),
            self.vout().millivolts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{ConstantLoad, NoLoad, ResistiveLoad};
    use subvt_device::units::{Amps, Ohms};

    fn settled(word: VoltageWord, load: Box<dyn LoadCurrent>) -> DcDcConverter {
        let mut c = DcDcConverter::new(ConverterParams::default(), load);
        c.set_word(word);
        c.run_system_cycles(120);
        c
    }

    #[test]
    fn word_19_regulates_to_356mv() {
        // Paper: "a digital word '19' from the rate controller will get
        // translated to 19 × 18.75 ≈ 356 mV".
        let c = settled(19, Box::new(ConstantLoad(Amps(5e-6))));
        let target = DcDcConverter::ideal_vout(19).millivolts();
        assert!((target - 356.25).abs() < 0.01);
        let vout = c.vout().millivolts();
        assert!(
            (vout - target).abs() < 10.0,
            "vout {vout} mV vs {target} mV"
        );
    }

    #[test]
    fn resolution_is_one_lsb() {
        let a = settled(19, Box::new(NoLoad));
        let b = settled(20, Box::new(NoLoad));
        let delta = b.vout().millivolts() - a.vout().millivolts();
        assert!((delta - 18.75).abs() < 3.0, "LSB step measured {delta} mV");
    }

    #[test]
    fn full_range_0_to_1v2() {
        let low = settled(1, Box::new(NoLoad));
        assert!(low.vout().millivolts() < 40.0);
        let high = settled(63, Box::new(NoLoad));
        assert!(
            high.vout().millivolts() > 1.2e3 * 62.0 / 64.0 - 15.0,
            "vout {}",
            high.vout()
        );
        let off = settled(0, Box::new(NoLoad));
        assert!(
            off.vout().millivolts() < 5.0,
            "shutdown leaks {}",
            off.vout()
        );
    }

    #[test]
    fn reset_then_rerun_is_bit_identical_to_fresh() {
        // The batched trim search reuses one converter across many
        // settles; a reset-then-run trajectory must match a fresh
        // converter bit-for-bit even though the solver's Φ cache is
        // retained (its entries are pure functions of the segment).
        let mut reused = DcDcConverter::new(
            ConverterParams::default(),
            Box::new(ConstantLoad(Amps(2e-6))),
        );
        for word in [19u8, 7, 44, 19] {
            reused.reset_transient();
            reused.set_word(word);
            reused.run_system_cycles(120);
            reused.enable_trace("vout");
            reused.run_system_cycles(8);

            let fresh = {
                let mut c = DcDcConverter::new(
                    ConverterParams::default(),
                    Box::new(ConstantLoad(Amps(2e-6))),
                );
                c.set_word(word);
                c.run_system_cycles(120);
                c.enable_trace("vout");
                c.run_system_cycles(8);
                c
            };
            assert_eq!(
                reused.vout().volts().to_bits(),
                fresh.vout().volts().to_bits(),
                "word {word}: vout diverged"
            );
            assert_eq!(
                reused.inductor_current().to_bits(),
                fresh.inductor_current().to_bits(),
                "word {word}: inductor current diverged"
            );
            assert_eq!(reused.now(), fresh.now(), "word {word}: clock diverged");
            assert_eq!(
                reused.switch_events(),
                fresh.switch_events(),
                "word {word}: switch count diverged"
            );
            let a = reused.trace().unwrap();
            let b = fresh.trace().unwrap();
            assert_eq!(a.len(), b.len(), "word {word}: trace length diverged");
            for (sa, sb) in a.samples().iter().zip(b.samples().iter()) {
                assert_eq!(sa.0, sb.0, "word {word}: trace time diverged");
                assert_eq!(
                    sa.1.to_bits(),
                    sb.1.to_bits(),
                    "word {word}: trace sample diverged"
                );
            }
        }
    }

    #[test]
    fn ripple_is_below_one_lsb() {
        let mut c = DcDcConverter::new(
            ConverterParams::default(),
            Box::new(ConstantLoad(Amps(5e-6))),
        );
        c.set_word(19);
        c.run_system_cycles(100);
        c.enable_trace("vout");
        c.run_system_cycles(5);
        let trace = c.trace().expect("tracing on");
        let (lo, hi) = trace
            .extent(SimTime::ZERO, SimTime::MAX)
            .expect("samples recorded");
        let ripple_mv = (hi - lo) * 1e3;
        assert!(ripple_mv < 18.75, "ripple {ripple_mv} mV");
    }

    #[test]
    fn step_change_settles_within_tens_of_cycles() {
        let mut c = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        c.set_word(19);
        c.run_system_cycles(100);
        c.set_word(47);
        c.run_system_cycles(60);
        let target = DcDcConverter::ideal_vout(47).millivolts();
        assert!(
            (c.vout().millivolts() - target).abs() < 10.0,
            "vout {} vs {target}",
            c.vout().millivolts()
        );
    }

    #[test]
    fn loaded_output_droops_slightly() {
        let light = settled(32, Box::new(NoLoad));
        let heavy = settled(32, Box::new(ResistiveLoad(Ohms(200.0))));
        assert!(heavy.vout().volts() < light.vout().volts());
        // 600 mV / 200 Ω = 3 mA through ~7 Ω ≈ 20 mV droop.
        let droop = light.vout().millivolts() - heavy.vout().millivolts();
        assert!((5.0..60.0).contains(&droop), "droop {droop} mV");
    }

    #[test]
    fn duty_trim_moves_one_lsb() {
        let mut c = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        c.set_word(19);
        c.run_system_cycles(100);
        let v0 = c.vout().millivolts();
        c.set_duty(20);
        c.run_system_cycles(60);
        let v1 = c.vout().millivolts();
        assert!((v1 - v0 - 18.75).abs() < 4.0, "trim step {}", v1 - v0);
    }

    #[test]
    fn losses_accumulate() {
        let mut c = DcDcConverter::new(
            ConverterParams::default(),
            Box::new(ConstantLoad(Amps(1e-3))),
        );
        c.set_word(32);
        c.run_system_cycles(50);
        assert!(c.conduction_energy().value() > 0.0);
        assert!(c.switch_events() > 50);
    }

    #[test]
    fn system_cycle_is_one_microsecond() {
        let c = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        assert!((c.system_cycle().value() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn pulse_skipping_regulates_within_a_band() {
        let mut c = DcDcConverter::new(
            ConverterParams::default(),
            Box::new(ConstantLoad(Amps(50e-6))),
        );
        c.set_mode(ModulationMode::PulseSkipping);
        c.set_word(19);
        c.run_system_cycles(200);
        // Bursty regulation: the mean tracks the target within ~2 LSB
        // and periods actually get skipped at this light load.
        let mut sum = 0.0;
        for _ in 0..50 {
            c.run_system_cycles(1);
            sum += c.vout().millivolts();
        }
        let mean = sum / 50.0;
        assert!((mean - 356.25).abs() < 37.5, "PFM mean {mean} mV");
        assert!(c.skipped_periods() > 20, "skipped {}", c.skipped_periods());
    }

    #[test]
    fn pulse_skipping_cuts_light_load_losses() {
        let run = |mode: ModulationMode| {
            let mut c = DcDcConverter::new(
                ConverterParams::default(),
                Box::new(ConstantLoad(Amps(20e-6))),
            );
            c.set_mode(mode);
            c.set_word(19);
            c.run_system_cycles(150);
            let e0 = c.conduction_energy().value();
            let s0 = c.switch_events();
            c.run_system_cycles(200);
            (c.conduction_energy().value() - e0, c.switch_events() - s0)
        };
        let (ccm_loss, ccm_events) = run(ModulationMode::ForcedCcm);
        let (pfm_loss, pfm_events) = run(ModulationMode::PulseSkipping);
        assert!(
            pfm_loss < ccm_loss / 3.0,
            "conduction: PFM {pfm_loss} vs CCM {ccm_loss}"
        );
        assert!(
            pfm_events < ccm_events / 2,
            "switching events: PFM {pfm_events} vs CCM {ccm_events}"
        );
    }

    #[test]
    fn pulse_skipping_never_fires_at_heavy_load() {
        // A load heavy enough to keep vout at/below target: every
        // period must switch.
        let mut c = DcDcConverter::new(
            ConverterParams::default(),
            Box::new(ResistiveLoad(Ohms(150.0))),
        );
        c.set_mode(ModulationMode::PulseSkipping);
        c.set_word(32);
        c.run_system_cycles(150);
        let skipped_before = c.skipped_periods();
        c.run_system_cycles(100);
        assert_eq!(
            c.skipped_periods(),
            skipped_before,
            "heavy load must not skip"
        );
        assert!((c.vout().millivolts() - 600.0).abs() < 45.0);
    }

    #[test]
    fn forced_ccm_never_skips() {
        let mut c = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        c.set_word(19);
        c.run_system_cycles(300);
        assert_eq!(c.skipped_periods(), 0);
        assert_eq!(c.mode(), ModulationMode::ForcedCcm);
    }

    /// Runs one converter to a settled word and reports
    /// `(settled vout, ripple, conduction energy, skipped periods)`.
    fn settled_stats(
        params: ConverterParams,
        mode: ModulationMode,
        word: VoltageWord,
    ) -> (f64, f64, f64, u64) {
        let mut c = DcDcConverter::new(params, Box::new(ConstantLoad(Amps(20e-6))));
        c.set_mode(mode);
        c.set_word(word);
        c.run_system_cycles(150);
        c.enable_trace("vout");
        c.run_system_cycles(50);
        let (lo, hi) = c
            .trace()
            .expect("tracing on")
            .extent(SimTime::ZERO, SimTime::MAX)
            .expect("samples recorded");
        (
            c.vout().volts(),
            hi - lo,
            c.conduction_energy().value(),
            c.skipped_periods(),
        )
    }

    /// The documented solver accuracy budget: closed form within
    /// 0.1 mV on settled voltage and 5 % on ripple of the RK4
    /// reference at `substeps = 16`.
    fn assert_within_budget(mode: ModulationMode, word: VoltageWord) {
        let reference = ConverterParams {
            substeps: 16,
            solver: SolverMode::Rk4,
            ..ConverterParams::default()
        };
        let (v_ref, ripple_ref, energy_ref, _) = settled_stats(reference, mode, word);
        let closed = ConverterParams::default().with_solver(SolverMode::ClosedForm);
        let (v, ripple, energy, _) = settled_stats(closed, mode, word);
        assert!(
            (v - v_ref).abs() < 0.1e-3,
            "{mode:?} word {word}: settled {v} vs {v_ref}"
        );
        assert!(
            (ripple - ripple_ref).abs() < 0.05 * ripple_ref,
            "{mode:?} word {word}: ripple {ripple} vs {ripple_ref}"
        );
        assert!(
            (energy - energy_ref).abs() < 0.05 * energy_ref,
            "{mode:?} word {word}: energy {energy} vs {energy_ref}"
        );
    }

    #[test]
    fn closed_form_matches_rk4_within_budget_in_ccm() {
        for word in [12, 19, 47] {
            assert_within_budget(ModulationMode::ForcedCcm, word);
        }
    }

    #[test]
    fn closed_form_matches_rk4_within_budget_under_pulse_skipping() {
        // PFM parity is the harder case: the skip decision quantises
        // the trajectory, so the budget also guards against the two
        // solvers choosing different periods to skip.
        for word in [19, 32] {
            assert_within_budget(ModulationMode::PulseSkipping, word);
        }
    }

    #[test]
    fn pulse_skipping_skips_the_same_periods_in_both_solver_modes() {
        let reference = ConverterParams {
            substeps: 16,
            solver: SolverMode::Rk4,
            ..ConverterParams::default()
        };
        let (_, _, _, skipped_ref) = settled_stats(reference, ModulationMode::PulseSkipping, 19);
        let closed = ConverterParams::default();
        let (_, _, _, skipped) = settled_stats(closed, ModulationMode::PulseSkipping, 19);
        let diff = skipped.abs_diff(skipped_ref);
        assert!(
            diff <= 2,
            "skip counts diverged: {skipped} vs {skipped_ref}"
        );
    }

    #[test]
    fn segment_stepping_matches_the_tick_loop() {
        // The trace-off fast path (2 affine updates per period) must
        // agree with per-tick closed-form stepping to float precision:
        // same operators, same segment boundaries.
        let mk = || {
            let mut c = DcDcConverter::new(
                ConverterParams::default(),
                Box::new(ConstantLoad(Amps(5e-6))),
            );
            c.set_word(19);
            c
        };
        let mut fast = mk();
        fast.run_system_cycles(120); // phase 0, no trace: segment path
        let mut slow = mk();
        slow.run_ticks(120 * 64); // always the tick loop
        assert!((fast.vout().volts() - slow.vout().volts()).abs() < 1e-12);
        assert!((fast.inductor_current() - slow.inductor_current()).abs() < 1e-12);
        assert_eq!(fast.switch_events(), slow.switch_events());
        assert_eq!(fast.now(), slow.now());
        // Loss integrals differ only in Simpson panel boundaries.
        let e_fast = fast.conduction_energy().value();
        let e_slow = slow.conduction_energy().value();
        assert!(
            (e_fast - e_slow).abs() < 0.02 * e_slow,
            "loss {e_fast} vs {e_slow}"
        );
    }

    #[test]
    fn display_reports_duty_and_vout() {
        let mut c = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
        c.set_word(19);
        let s = format!("{c}");
        assert!(s.contains("duty 19/64"), "{s}");
    }
}
