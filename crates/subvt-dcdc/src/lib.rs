//! # subvt-dcdc
//!
//! The all-digital DC-DC converter of *"Variation Resilient Adaptive
//! Controller for Subthreshold Circuits"* (DATE 2009): an "ultra
//! dynamic voltage scaling" buck converter producing any Vdd from 0 to
//! 1.2 V with a resolution of 1.2 V / 2⁶ = 18.75 mV.
//!
//! * [`power_stage`] — the selectable PMOS/NMOS power transistor array;
//! * [`filter`] — the off-chip LC output filter as an ODE, plus load
//!   models;
//! * [`converter`] — the switched converter: 64 MHz PWM ticks
//!   co-simulated with the filter, with loss accounting and waveform
//!   tracing;
//! * [`solver`] — the closed-form piecewise-LTI segment solver (one
//!   exact affine update per PWM edge; the default), with the RK4 tick
//!   integrator kept as the accuracy reference;
//! * [`ideal`] — an instantaneous lossless reference converter.
//!
//! ## Example
//!
//! Regulate the paper's word 19 (≈ 356 mV):
//!
//! ```
//! use subvt_dcdc::converter::{ConverterParams, DcDcConverter};
//! use subvt_dcdc::filter::NoLoad;
//!
//! let mut dcdc = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
//! dcdc.set_word(19);
//! dcdc.run_system_cycles(120); // 120 µs of simulated time
//! let vout = dcdc.vout().millivolts();
//! assert!((vout - 356.25).abs() < 10.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod converter;
pub mod disturbance;
pub mod efficiency;
pub mod filter;
pub mod ideal;
pub mod power_stage;
pub mod solver;

pub use converter::{ConverterParams, DcDcConverter, ModulationMode};
pub use disturbance::{comparator_glitch_droop, missed_edge_droop, reference_upset};
pub use efficiency::{best_group_count, measure_efficiency, EfficiencyPoint, SwitchingLossModel};
pub use filter::{BuckFilter, ConstantLoad, FilterParams, LoadCurrent, NoLoad, ResistiveLoad};
pub use ideal::IdealConverter;
pub use power_stage::{PowerStageParams, PowerTransistorArray};
pub use solver::{SegmentSolver, SolverMode};
