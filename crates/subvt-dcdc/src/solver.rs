//! Closed-form piecewise-LTI segment solver for the buck filter.
//!
//! Between consecutive PWM edges the switch-node Thevenin source is
//! constant, so for any affine load `i(v) = g·v + i0` the filter is a
//! 2-state *linear time-invariant* system
//!
//! ```text
//! dy/dt = A·y + b,    y = [i_L, v_out]
//! A = [ −R/L   −1/L ]      b = [ v_sw/L ]
//!     [  1/C   −g/C ]          [ −i0/C  ]
//! ```
//!
//! with `R = r_src + DCR`. Its exact solution over a segment of length
//! `h` is one affine update
//!
//! ```text
//! y(t+h) = y_ss + Φ(h)·(y(t) − y_ss),    Φ(h) = exp(A·h)
//! ```
//!
//! (the `Φ/Γ` form with `Γ(h)·u = (I − Φ(h))·y_ss`). The steady state
//! always exists because `det A = (R·g + 1)/(L·C) > 0` for the passive
//! loads the converter drives.
//!
//! `Φ` is evaluated from the spectral decomposition of `A`: with
//! `α = tr(A)/2`, `M = A − αI` and discriminant `d = α² − det A`
//! (the squared half-distance between the eigenvalues), the three
//! damping regimes are
//!
//! ```text
//! d > 0 (overdamped):        Φ = e^{αh}·(cosh(βh)·I + h·sinch(βh)·M),  β = √d
//! d < 0 (underdamped):       Φ = e^{αh}·(cos(ωh)·I  + h·sinc(ωh)·M),   ω = √−d
//! d = 0 (critically damped): Φ = e^{αh}·(I + h·M)
//! ```
//!
//! An explicit eigenvector matrix would be ill-conditioned near
//! critical damping; the shifted-matrix form above is the same
//! diagonalization folded back together and is exact in all three
//! branches (`sinch`/`sinc` are series-stabilised near zero, so the
//! over/underdamped branches degrade gracefully into the critical one).
//!
//! A 6-bit duty register can only produce a small set of distinct
//! segment lengths — ≤ 63 on-durations, ≤ 63 off-durations, and the
//! sample-boundary remainders when the converter is stepped one tick at
//! a time — so [`SegmentSolver`] caches `Φ` per `(R, g)` operating
//! point at **half-tick granularity** (lengths `1..=128` half-ticks).
//! Half ticks, because the conduction-loss integral
//! `E = R·∫ i_L(t)² dt` is evaluated per segment by Simpson's rule,
//! which needs the state at the segment midpoint.
//!
//! Loads whose `i(v)` is *not* affine ([`LoadCurrent::affine`] returns
//! `None`) are handled by per-segment linearisation around the entry
//! voltage with a step-halving error bound: the segment is accepted
//! only if re-linearising at the midpoint moves the result by less than
//! [`SegmentSolver::NONLINEAR_TOL`], otherwise both halves are refined
//! recursively (bounded depth).
//!
//! The RK4 path survives in [`crate::converter`] as the accuracy
//! reference; the budget (≤ 0.1 mV on settled voltage, ≤ 5 % on ripple
//! vs RK4 at `substeps = 16`) is enforced by tests here and by the
//! `transient` bench group.

use subvt_device::units::Hertz;

use crate::filter::{FilterParams, LoadCurrent};

/// Integration strategy for the converter's LC filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Fixed-step RK4 on every clock tick (`substeps` stages per tick).
    /// The original path, kept as the accuracy reference.
    Rk4,
    /// Exact piecewise-LTI updates: one affine step per PWM segment (or
    /// per tick when tracing), with per-segment linearisation for
    /// non-affine loads. ≥10× faster than RK4 at the documented
    /// accuracy budget.
    #[default]
    ClosedForm,
}

/// A 2×2 state-transition operator `Φ(h)`.
type Phi = [[f64; 2]; 2];

/// Cached `Φ` operators for one `(R, g)` operating point, indexed by
/// segment length in half-ticks (`1..=MAX_HALF_TICKS`).
#[derive(Debug)]
struct OpSet {
    r_bits: u64,
    g_bits: u64,
    ops: Vec<Option<Phi>>,
}

/// Closed-form segment stepper for one [`FilterParams`] at one clock.
///
/// Create once per converter; [`SegmentSolver::advance`] replaces
/// `ticks × substeps` RK4 stages with a single affine update (two, for
/// the Simpson midpoint).
#[derive(Debug)]
pub struct SegmentSolver {
    /// Inductance (H).
    l: f64,
    /// Capacitance (F).
    c: f64,
    /// Inductor series resistance (Ω), folded into `R`.
    dcr: f64,
    /// Half of one clock tick, in seconds (the cache granularity).
    half_tick: f64,
    cache: Vec<OpSet>,
}

impl SegmentSolver {
    /// Longest cached segment in half-ticks: one full 64-tick PWM
    /// period.
    const MAX_HALF_TICKS: usize = 128;

    /// Operating points cached before the cache is reset (distinct
    /// `(R, g)` pairs; in practice ≤ 3 per group selection).
    const MAX_CACHED_POINTS: usize = 64;

    /// Per-segment acceptance tolerance (V and A) for the step-halving
    /// error bound on linearised non-affine loads.
    pub const NONLINEAR_TOL: f64 = 1e-7;

    /// Maximum recursive halving depth for non-affine loads.
    const MAX_DEPTH: u32 = 10;

    /// Voltage perturbation for the numerical `di/dv` linearisation.
    const LINEARIZE_DV: f64 = 1e-3;

    /// Creates a solver for `filter` stepped at `clock`.
    pub fn new(filter: FilterParams, clock: Hertz) -> SegmentSolver {
        SegmentSolver {
            l: filter.inductance.value(),
            c: filter.capacitance.value(),
            dcr: filter.dcr.value(),
            half_tick: 0.5 / clock.value(),
            cache: Vec::new(),
        }
    }

    /// Advances `state` through `ticks` clock ticks of one PWM segment
    /// with a constant Thevenin source `(v_sw, r_src)` into `load`.
    ///
    /// Returns `∫ i_L(t)² dt` over the segment (Simpson's rule on the
    /// exact trajectory); multiply by `r_src + DCR` for the conduction
    /// energy.
    pub fn advance(
        &mut self,
        state: &mut [f64; 2],
        v_sw: f64,
        r_src: f64,
        load: &dyn LoadCurrent,
        ticks: u32,
    ) -> f64 {
        debug_assert!(ticks >= 1);
        let r = r_src + self.dcr;
        if let Some((g, i0)) = load.affine() {
            let half_ticks = 2 * ticks as usize;
            let (y, q) = if half_ticks <= Self::MAX_HALF_TICKS {
                let (phi_full, phi_half) = self.cached_ops(r, g, half_ticks);
                affine_step(*state, steady_state(v_sw, r, g, i0), phi_full, phi_half)
            } else {
                // Longer than one PWM period (only reachable through
                // direct solver use, not the converter): no cache.
                let h = half_ticks as f64 * self.half_tick;
                self.raw_step(*state, v_sw, r, g, i0, h)
            };
            *state = y;
            q * (ticks as f64 * 2.0 * self.half_tick) / 6.0
        } else {
            let h = 2.0 * ticks as f64 * self.half_tick;
            let (y, q) = self.advance_linearized(*state, v_sw, r, load, h, 0);
            *state = y;
            q
        }
    }

    /// Exact analytic discharge of the output capacitor with both
    /// switches off and the inductor current collapsed to zero (the
    /// pulse-skipping high-Z state): `C·dv/dt = −i_load(v)`.
    ///
    /// Affine loads get the exact exponential/linear solution; others
    /// fall back to per-tick explicit Euler (matching the RK4-mode
    /// reference path). The voltage is clamped at 0 V either way.
    pub fn discharge(&self, vout: f64, load: &dyn LoadCurrent, ticks: u32) -> f64 {
        let h = 2.0 * ticks as f64 * self.half_tick;
        if let Some((g, i0)) = load.affine() {
            let v = if g > 0.0 {
                let v_inf = -i0 / g;
                v_inf + (vout - v_inf) * (-g * h / self.c).exp()
            } else {
                vout - i0 * h / self.c
            };
            v.max(0.0)
        } else {
            let dt = 2.0 * self.half_tick;
            let mut v = vout;
            for _ in 0..ticks {
                let i = load.current(subvt_device::units::Volts(v)).value();
                v = (v - i * dt / self.c).max(0.0);
            }
            v
        }
    }

    /// The state matrix entries for an operating point.
    fn state_matrix(&self, r: f64, g: f64) -> [[f64; 2]; 2] {
        [[-r / self.l, -1.0 / self.l], [1.0 / self.c, -g / self.c]]
    }

    /// `Φ(h) = exp(A·h)` via the three damping branches.
    fn phi(&self, r: f64, g: f64, h: f64) -> Phi {
        let a = self.state_matrix(r, g);
        let alpha = 0.5 * (a[0][0] + a[1][1]);
        let m = [[a[0][0] - alpha, a[0][1]], [a[1][0], a[1][1] - alpha]];
        // Discriminant d = α² − det A = −det M (squared eigenvalue
        // half-separation). M is trace-free, so M² = d·I and the
        // exponential series collapses to the two scalars below.
        let d = -(m[0][0] * m[1][1] - m[0][1] * m[1][0]);
        let (cosine, slope) = if d > 0.0 {
            let x = d.sqrt() * h;
            (x.cosh(), h * sinch(x))
        } else if d < 0.0 {
            let x = (-d).sqrt() * h;
            (x.cos(), h * sinc(x))
        } else {
            (1.0, h)
        };
        let e = (alpha * h).exp();
        [
            [e * (cosine + slope * m[0][0]), e * slope * m[0][1]],
            [e * slope * m[1][0], e * (cosine + slope * m[1][1])],
        ]
    }

    /// Looks up (or fills) the cached `(Φ(h), Φ(h/2))` pair for a
    /// segment of `half_ticks` half-ticks at operating point `(r, g)`.
    fn cached_ops(&mut self, r: f64, g: f64, half_ticks: usize) -> (Phi, Phi) {
        debug_assert!(half_ticks.is_multiple_of(2) && half_ticks <= Self::MAX_HALF_TICKS);
        let r_bits = r.to_bits();
        let g_bits = g.to_bits();
        let idx = match self
            .cache
            .iter()
            .position(|s| s.r_bits == r_bits && s.g_bits == g_bits)
        {
            Some(idx) => idx,
            None => {
                // Group re-selection changes R; a pathological caller
                // could sweep operating points, so bound the cache.
                if self.cache.len() >= Self::MAX_CACHED_POINTS {
                    self.cache.clear();
                }
                self.cache.push(OpSet {
                    r_bits,
                    g_bits,
                    ops: vec![None; Self::MAX_HALF_TICKS + 1],
                });
                self.cache.len() - 1
            }
        };
        let full = match self.cache[idx].ops[half_ticks] {
            Some(phi) => phi,
            None => {
                let phi = self.phi(r, g, half_ticks as f64 * self.half_tick);
                self.cache[idx].ops[half_ticks] = Some(phi);
                phi
            }
        };
        let half = match self.cache[idx].ops[half_ticks / 2] {
            Some(phi) => phi,
            None => {
                let phi = self.phi(r, g, half_ticks as f64 * 0.5 * self.half_tick);
                self.cache[idx].ops[half_ticks / 2] = Some(phi);
                phi
            }
        };
        (full, half)
    }

    /// One uncached affine step of arbitrary length `h`; returns the
    /// new state and the Simpson i² sum (unscaled, see [`affine_step`]).
    fn raw_step(&self, y: [f64; 2], v_sw: f64, r: f64, g: f64, i0: f64, h: f64) -> ([f64; 2], f64) {
        let phi_full = self.phi(r, g, h);
        let phi_half = self.phi(r, g, 0.5 * h);
        affine_step(y, steady_state(v_sw, r, g, i0), phi_full, phi_half)
    }

    /// Linearises a non-affine load at the segment entry voltage.
    fn linearize(&self, load: &dyn LoadCurrent, v: f64) -> (f64, f64) {
        use subvt_device::units::Volts;
        let dv = Self::LINEARIZE_DV;
        let i_hi = load.current(Volts(v + dv)).value();
        let i_lo = load.current(Volts(v - dv)).value();
        let g = ((i_hi - i_lo) / (2.0 * dv)).max(0.0);
        let i0 = load.current(Volts(v)).value() - g * v;
        (g, i0)
    }

    /// Step-halving advance for non-affine loads. Returns the new state
    /// and the *scaled* loss integral `∫ i² dt` over `h`.
    fn advance_linearized(
        &self,
        y: [f64; 2],
        v_sw: f64,
        r: f64,
        load: &dyn LoadCurrent,
        h: f64,
        depth: u32,
    ) -> ([f64; 2], f64) {
        let (g, i0) = self.linearize(load, y[1]);
        let (y_full, q_full) = self.raw_step(y, v_sw, r, g, i0, h);
        if depth >= Self::MAX_DEPTH {
            return (y_full, q_full * h / 6.0);
        }
        // Two half steps, re-linearising at the midpoint.
        let (y_mid, q_a) = self.raw_step(y, v_sw, r, g, i0, 0.5 * h);
        let (g2, i02) = self.linearize(load, y_mid[1]);
        let (y_halved, q_b) = self.raw_step(y_mid, v_sw, r, g2, i02, 0.5 * h);
        let err = (y_full[0] - y_halved[0])
            .abs()
            .max((y_full[1] - y_halved[1]).abs());
        if err <= Self::NONLINEAR_TOL {
            (y_halved, (q_a + q_b) * 0.5 * h / 6.0)
        } else {
            let (y_mid, q_a) = self.advance_linearized(y, v_sw, r, load, 0.5 * h, depth + 1);
            let (y_end, q_b) = self.advance_linearized(y_mid, v_sw, r, load, 0.5 * h, depth + 1);
            (y_end, q_a + q_b)
        }
    }
}

/// The LTI steady state `y_ss = −A⁻¹·b` for source `v_sw` through total
/// resistance `r` into load `i(v) = g·v + i0`.
fn steady_state(v_sw: f64, r: f64, g: f64, i0: f64) -> [f64; 2] {
    let v_ss = (v_sw - r * i0) / (1.0 + r * g);
    [g * v_ss + i0, v_ss]
}

/// `y(h) = y_ss + Φ(h)·(y − y_ss)` plus the Simpson sum
/// `i(0)² + 4·i(h/2)² + i(h)²` (caller scales by `h/6`).
fn affine_step(y: [f64; 2], y_ss: [f64; 2], phi_full: Phi, phi_half: Phi) -> ([f64; 2], f64) {
    let dy = [y[0] - y_ss[0], y[1] - y_ss[1]];
    let apply = |phi: &Phi| {
        [
            y_ss[0] + phi[0][0] * dy[0] + phi[0][1] * dy[1],
            y_ss[1] + phi[1][0] * dy[0] + phi[1][1] * dy[1],
        ]
    };
    let y_mid = apply(&phi_half);
    let y_end = apply(&phi_full);
    let q = y[0] * y[0] + 4.0 * y_mid[0] * y_mid[0] + y_end[0] * y_end[0];
    (y_end, q)
}

/// `sinh(x)/x`, series-stabilised for small `x`.
fn sinch(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        let x2 = x * x;
        1.0 + x2 / 6.0 + x2 * x2 / 120.0
    } else {
        x.sinh() / x
    }
}

/// `sin(x)/x`, series-stabilised for small `x`.
fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        let x2 = x * x;
        1.0 - x2 / 6.0 + x2 * x2 / 120.0
    } else {
        x.sin() / x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BuckFilter, ConstantLoad, NoLoad, ResistiveLoad};
    use subvt_device::units::{Amps, Ohms, Volts};
    use subvt_sim::analog::{integrate_span, IntegrationMethod};

    fn clock() -> Hertz {
        Hertz::from_megahertz(64.0)
    }

    /// RK4 reference at high substep count over the same segment.
    fn rk4_reference(
        v_sw: f64,
        r_src: f64,
        load: Box<dyn LoadCurrent>,
        y0: [f64; 2],
        ticks: u32,
    ) -> [f64; 2] {
        let mut f = BuckFilter::new(FilterParams::default(), load);
        f.source_voltage = Volts(v_sw);
        f.source_resistance = Ohms(r_src);
        let mut y = y0;
        let dt = 1.0 / clock().value();
        for _ in 0..ticks {
            integrate_span(&f, IntegrationMethod::Rk4, 0.0, &mut y, dt, 16);
        }
        y
    }

    #[test]
    fn matches_rk4_on_an_affine_segment() {
        let mut s = SegmentSolver::new(FilterParams::default(), clock());
        for &(v_sw, r_src, ticks) in &[(1.1, 5.5, 19u32), (0.02, 4.4, 45), (0.6, 7.0, 1)] {
            let y0 = [3e-4, 0.35];
            let mut y = y0;
            s.advance(&mut y, v_sw, r_src, &ResistiveLoad(Ohms(1e4)), ticks);
            let y_ref = rk4_reference(v_sw, r_src, Box::new(ResistiveLoad(Ohms(1e4))), y0, ticks);
            assert!(
                (y[0] - y_ref[0]).abs() < 1e-9 && (y[1] - y_ref[1]).abs() < 1e-9,
                "segment ({v_sw}, {r_src}, {ticks}): {y:?} vs {y_ref:?}"
            );
        }
    }

    #[test]
    fn all_damping_branches_match_a_dense_reference() {
        // Sweep R to cross from underdamped through (numerically)
        // critical to overdamped: d = (R/2L − g/2C)² − ... changes sign
        // around R ≈ 2√(L/C) ≈ 13.7 Ω for light loads.
        let p = FilterParams::default();
        let critical_r = 2.0 * (p.inductance.value() / p.capacitance.value()).sqrt();
        for &r_src in &[1.0, critical_r - 2.0, critical_r, critical_r + 2.0, 400.0] {
            let mut s = SegmentSolver::new(p, clock());
            let y0 = [1e-3, 0.2];
            let mut y = y0;
            s.advance(&mut y, 0.9, r_src - p.dcr.value(), &NoLoad, 64);
            let y_ref = rk4_reference(0.9, r_src - p.dcr.value(), Box::new(NoLoad), y0, 64);
            assert!(
                (y[0] - y_ref[0]).abs() < 1e-8 && (y[1] - y_ref[1]).abs() < 1e-8,
                "R = {r_src}: {y:?} vs {y_ref:?}"
            );
        }
    }

    #[test]
    fn steady_state_is_a_fixed_point() {
        let mut s = SegmentSolver::new(FilterParams::default(), clock());
        let (g, i0) = (1e-4, 2e-6);
        let y_ss = steady_state(0.8, 7.0, g, i0);
        let mut y = y_ss;
        s.advance(&mut y, 0.8, 7.0 - 2.0, &ResistiveAndConstant, 64);
        assert!((y[0] - y_ss[0]).abs() < 1e-15 && (y[1] - y_ss[1]).abs() < 1e-12);

        #[derive(Debug)]
        struct ResistiveAndConstant;
        impl LoadCurrent for ResistiveAndConstant {
            fn current(&self, v: Volts) -> Amps {
                Amps(1e-4 * v.volts() + 2e-6)
            }
            fn affine(&self) -> Option<(f64, f64)> {
                Some((1e-4, 2e-6))
            }
        }
    }

    #[test]
    fn loss_integral_matches_trapezoid_reference() {
        // Compare the Simpson loss integral against a dense trapezoid
        // on the RK4 trajectory.
        let mut s = SegmentSolver::new(FilterParams::default(), clock());
        let y0 = [2e-3, 0.3];
        let mut y = y0;
        let q = s.advance(&mut y, 1.0, 5.0, &NoLoad, 32);

        let mut f = BuckFilter::new(FilterParams::default(), Box::new(NoLoad));
        f.source_voltage = Volts(1.0);
        f.source_resistance = Ohms(5.0);
        let mut yr = y0;
        let dt = 1.0 / clock().value();
        let mut q_ref = 0.0;
        for _ in 0..32 {
            let i_before = yr[0];
            integrate_span(&f, IntegrationMethod::Rk4, 0.0, &mut yr, dt, 16);
            q_ref += 0.5 * (i_before * i_before + yr[0] * yr[0]) * dt;
        }
        assert!(
            (q - q_ref).abs() < 0.01 * q_ref.abs(),
            "Simpson {q} vs trapezoid {q_ref}"
        );
    }

    #[test]
    fn nonlinear_load_stays_within_halving_tolerance() {
        // A quadratic (clearly non-affine) load, solved by linearised
        // halving vs a dense RK4 reference.
        #[derive(Debug)]
        struct QuadraticLoad;
        impl LoadCurrent for QuadraticLoad {
            fn current(&self, v: Volts) -> Amps {
                let v = v.volts().max(0.0);
                Amps(2e-3 * v * v)
            }
        }
        assert!(QuadraticLoad.affine().is_none());

        let mut s = SegmentSolver::new(FilterParams::default(), clock());
        let y0 = [1e-3, 0.4];
        let mut y = y0;
        s.advance(&mut y, 0.9, 5.0, &QuadraticLoad, 64);
        let y_ref = rk4_reference(0.9, 5.0, Box::new(QuadraticLoad), y0, 64);
        assert!(
            (y[1] - y_ref[1]).abs() < 1e-6,
            "nonlinear vout {} vs {}",
            y[1],
            y_ref[1]
        );
        assert!((y[0] - y_ref[0]).abs() < 1e-6);
    }

    #[test]
    fn discharge_matches_euler_and_exponential() {
        let s = SegmentSolver::new(FilterParams::default(), clock());
        // Constant load: linear discharge.
        let v = s.discharge(0.5, &ConstantLoad(Amps(2e-6)), 64);
        let dt = 64.0 / clock().value();
        let expected = 0.5 - 2e-6 * dt / 470e-9;
        assert!((v - expected).abs() < 1e-9, "{v} vs {expected}");
        // Resistive load: exponential toward 0.
        let v = s.discharge(0.5, &ResistiveLoad(Ohms(1e4)), 64);
        let tau = 1e4 * 470e-9;
        let expected = 0.5 * (-dt / tau).exp();
        assert!((v - expected).abs() < 1e-6, "{v} vs {expected}");
        // Never below zero.
        assert_eq!(s.discharge(1e-9, &ConstantLoad(Amps(1.0)), 64), 0.0);
    }

    #[test]
    fn operator_cache_is_hit_on_repeat_segments() {
        let mut s = SegmentSolver::new(FilterParams::default(), clock());
        let mut y = [0.0, 0.0];
        s.advance(&mut y, 1.0, 5.0, &NoLoad, 19);
        s.advance(&mut y, 0.0, 4.0, &NoLoad, 45);
        assert_eq!(s.cache.len(), 2, "two operating points");
        let filled: usize = s.cache[0].ops.iter().flatten().count();
        s.advance(&mut y, 1.0, 5.0, &NoLoad, 19);
        assert_eq!(s.cache.len(), 2, "repeat segment adds no entry");
        assert_eq!(
            s.cache[0].ops.iter().flatten().count(),
            filled,
            "repeat segment computes no new operator"
        );
    }

    #[test]
    fn default_solver_mode_is_closed_form() {
        assert_eq!(SolverMode::default(), SolverMode::ClosedForm);
    }
}
