//! The power transistor array (paper Sec. III).
//!
//! "The power transistor array has several back to back transistors
//! connected together. By doing so we could select a group of PMOS and
//! NMOS transistors based on the workload. For the highest workload,
//! all the transistors in the array is selected."
//!
//! The array is a synchronous buck leg: the PMOS bank connects the
//! switch node to the battery while the PWM is high, the NMOS bank
//! connects it to ground while the PWM is low. Selecting fewer groups
//! raises the effective on-resistance (right-sizing conduction loss to
//! the load).

use std::fmt;

use subvt_device::units::{Ohms, Volts};
use subvt_sim::logic::Logic;

/// Configuration of the transistor array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerStageParams {
    /// Number of selectable transistor groups.
    pub groups: u32,
    /// On-resistance of the full PMOS bank (all groups selected).
    pub pmos_full_on: Ohms,
    /// On-resistance of the full NMOS bank.
    pub nmos_full_on: Ohms,
    /// Off-resistance of a bank.
    pub off_resistance: Ohms,
}

impl Default for PowerStageParams {
    fn default() -> PowerStageParams {
        PowerStageParams {
            groups: 8,
            pmos_full_on: Ohms(5.0),
            nmos_full_on: Ohms(4.0),
            off_resistance: Ohms(1e9),
        }
    }
}

/// The power transistor array with its current group selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerTransistorArray {
    params: PowerStageParams,
    selected: u32,
}

impl PowerTransistorArray {
    /// Creates an array with all groups selected (highest workload).
    ///
    /// # Panics
    ///
    /// Panics if the parameter set has zero groups or non-positive
    /// resistances.
    pub fn new(params: PowerStageParams) -> PowerTransistorArray {
        assert!(params.groups > 0, "need at least one transistor group");
        assert!(
            params.pmos_full_on.value() > 0.0
                && params.nmos_full_on.value() > 0.0
                && params.off_resistance.value() > 0.0,
            "resistances must be positive"
        );
        PowerTransistorArray {
            params,
            selected: params.groups,
        }
    }

    /// Array configuration.
    pub fn params(&self) -> PowerStageParams {
        self.params
    }

    /// Currently selected group count.
    pub fn selected_groups(&self) -> u32 {
        self.selected
    }

    /// Selects `groups` of the array (clamped to `1..=groups`).
    pub fn select_groups(&mut self, groups: u32) {
        self.selected = groups.clamp(1, self.params.groups);
    }

    /// Picks a group count for a workload fraction (0..=1 of peak load
    /// current); the paper selects "based on the workload".
    pub fn select_for_workload(&mut self, fraction: f64) {
        let f = fraction.clamp(0.0, 1.0);
        let g = (f * f64::from(self.params.groups)).ceil() as u32;
        self.select_groups(g.max(1));
    }

    /// High-side (PMOS, to the battery) resistance for a PWM level.
    /// An `Unknown` PWM level leaves both banks off (safe state).
    pub fn high_side(&self, pwm: Logic) -> Ohms {
        if pwm.is_high() {
            Ohms(
                self.params.pmos_full_on.value() * f64::from(self.params.groups)
                    / f64::from(self.selected),
            )
        } else {
            self.params.off_resistance
        }
    }

    /// Low-side (NMOS, to ground) resistance for a PWM level.
    pub fn low_side(&self, pwm: Logic) -> Ohms {
        if pwm.is_low() {
            Ohms(
                self.params.nmos_full_on.value() * f64::from(self.params.groups)
                    / f64::from(self.selected),
            )
        } else {
            self.params.off_resistance
        }
    }

    /// Thevenin equivalent seen by the inductor: `(open-circuit switch
    /// node voltage, source resistance)` for a given PWM level and
    /// battery voltage.
    pub fn thevenin(&self, pwm: Logic, vbat: Volts) -> (Volts, Ohms) {
        let gh = 1.0 / self.high_side(pwm).value();
        let gl = 1.0 / self.low_side(pwm).value();
        let g = gh + gl;
        (Volts(vbat.volts() * gh / g), Ohms(1.0 / g))
    }
}

impl fmt::Display for PowerTransistorArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array {}/{} groups", self.selected, self.params.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_array_has_lowest_resistance() {
        let a = PowerTransistorArray::new(PowerStageParams::default());
        assert_eq!(a.selected_groups(), 8);
        assert_eq!(a.high_side(Logic::High).value(), 5.0);
        assert_eq!(a.low_side(Logic::Low).value(), 4.0);
    }

    #[test]
    fn fewer_groups_raise_resistance() {
        let mut a = PowerTransistorArray::new(PowerStageParams::default());
        a.select_groups(2);
        assert_eq!(a.high_side(Logic::High).value(), 20.0);
        a.select_groups(0);
        assert_eq!(a.selected_groups(), 1, "clamps to one group");
        a.select_groups(100);
        assert_eq!(a.selected_groups(), 8);
    }

    #[test]
    fn workload_selection_scales_groups() {
        let mut a = PowerTransistorArray::new(PowerStageParams::default());
        a.select_for_workload(1.0);
        assert_eq!(a.selected_groups(), 8);
        a.select_for_workload(0.3);
        assert_eq!(a.selected_groups(), 3);
        a.select_for_workload(0.0);
        assert_eq!(a.selected_groups(), 1);
    }

    #[test]
    fn synchronous_switching() {
        let a = PowerTransistorArray::new(PowerStageParams::default());
        // PWM high: high side conducts, low side off.
        assert!(a.high_side(Logic::High).value() < 10.0);
        assert!(a.low_side(Logic::High).value() > 1e6);
        // PWM low: reversed.
        assert!(a.high_side(Logic::Low).value() > 1e6);
        assert!(a.low_side(Logic::Low).value() < 10.0);
        // Unknown: both off.
        assert!(a.high_side(Logic::Unknown).value() > 1e6);
        assert!(a.low_side(Logic::Unknown).value() > 1e6);
    }

    #[test]
    fn thevenin_tracks_pwm() {
        let a = PowerTransistorArray::new(PowerStageParams::default());
        let (v_high, r_high) = a.thevenin(Logic::High, Volts(1.2));
        assert!((v_high.volts() - 1.2).abs() < 1e-6, "≈Vbat when high");
        assert!((r_high.value() - 5.0).abs() < 0.01);
        let (v_low, r_low) = a.thevenin(Logic::Low, Volts(1.2));
        assert!(v_low.volts() < 1e-6, "≈0 when low");
        assert!((r_low.value() - 4.0).abs() < 0.01);
    }

    #[test]
    fn display_shows_selection() {
        let mut a = PowerTransistorArray::new(PowerStageParams::default());
        a.select_groups(3);
        assert_eq!(format!("{a}"), "array 3/8 groups");
    }

    #[test]
    #[should_panic(expected = "at least one transistor group")]
    fn zero_groups_rejected() {
        let _ = PowerTransistorArray::new(PowerStageParams {
            groups: 0,
            ..PowerStageParams::default()
        });
    }
}
