//! Converter efficiency analysis.
//!
//! Quantifies why the paper's power-transistor array selects "a group
//! of PMOS and NMOS transistors based on the workload": a big array has
//! low conduction loss but pays gate-charge switching loss on every PWM
//! edge; a light load is served more efficiently by a slice of the
//! array.

use subvt_device::units::{Amps, Farads, Joules, Volts, Watts};

use crate::converter::{ConverterParams, DcDcConverter};
use crate::filter::ConstantLoad;

/// Per-group gate capacitance of the power array (sets switching loss).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingLossModel {
    /// Gate capacitance of one array group.
    pub group_gate_cap: Farads,
    /// Gate-drive voltage (the 1.2 V rail).
    pub drive_voltage: Volts,
}

impl Default for SwitchingLossModel {
    fn default() -> SwitchingLossModel {
        SwitchingLossModel {
            group_gate_cap: Farads(20e-12),
            drive_voltage: Volts(1.2),
        }
    }
}

impl SwitchingLossModel {
    /// Energy burned per PWM transition with `groups` groups selected.
    pub fn energy_per_event(&self, groups: u32) -> Joules {
        let v = self.drive_voltage.volts();
        Joules(self.group_gate_cap.value() * f64::from(groups) * v * v)
    }
}

/// One measured efficiency point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Voltage word commanded.
    pub word: u8,
    /// Array groups selected.
    pub groups: u32,
    /// Load current drawn.
    pub load: Amps,
    /// Mean output voltage over the measurement window.
    pub vout: Volts,
    /// Power delivered to the load.
    pub output_power: Watts,
    /// Conduction loss power (switch + DCR I²R).
    pub conduction_loss: Watts,
    /// Gate-charge switching loss power.
    pub switching_loss: Watts,
}

impl EfficiencyPoint {
    /// Conversion efficiency `P_out / (P_out + losses)`.
    pub fn efficiency(&self) -> f64 {
        let total =
            self.output_power.value() + self.conduction_loss.value() + self.switching_loss.value();
        if total <= 0.0 {
            0.0
        } else {
            self.output_power.value() / total
        }
    }
}

/// Measures converter efficiency at one operating point by running the
/// switched simulation to steady state and integrating losses over a
/// measurement window.
///
/// # Panics
///
/// Panics if `groups` is zero or the measurement windows are zero.
pub fn measure_efficiency(
    params: ConverterParams,
    loss_model: SwitchingLossModel,
    word: u8,
    groups: u32,
    load: Amps,
    settle_cycles: u64,
    measure_cycles: u64,
) -> EfficiencyPoint {
    assert!(groups > 0, "need at least one group");
    assert!(
        settle_cycles > 0 && measure_cycles > 0,
        "windows must be positive"
    );
    let mut c = DcDcConverter::new(params, Box::new(ConstantLoad(load)));
    c.select_workload(f64::from(groups) / f64::from(params.stage.groups));
    c.set_word(word);
    c.run_system_cycles(settle_cycles);

    let e0 = c.conduction_energy();
    let s0 = c.switch_events();
    let t0 = c.now();
    // Average vout over the window by sampling each cycle.
    let mut vsum = 0.0;
    for _ in 0..measure_cycles {
        c.run_system_cycles(1);
        vsum += c.vout().volts();
    }
    let span = c.now().since(t0).as_seconds();
    let vout = Volts(vsum / measure_cycles as f64);

    let conduction = (c.conduction_energy() - e0).value() / span;
    let events = c.switch_events() - s0;
    let switching = loss_model.energy_per_event(groups).value() * events as f64 / span;
    let output_power = vout.volts() * load.value();

    EfficiencyPoint {
        word,
        groups,
        load,
        vout,
        output_power: Watts(output_power),
        conduction_loss: Watts(conduction),
        switching_loss: Watts(switching),
    }
}

/// Picks the most efficient group count for a load by measuring each
/// candidate (the design-time table behind "select … based on the
/// workload").
pub fn best_group_count(
    params: ConverterParams,
    loss_model: SwitchingLossModel,
    word: u8,
    load: Amps,
) -> (u32, f64) {
    let mut best = (1u32, 0.0f64);
    for groups in 1..=params.stage.groups {
        let p = measure_efficiency(params, loss_model, word, groups, load, 60, 20);
        let eff = p.efficiency();
        if eff > best.1 {
            best = (groups, eff);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(groups: u32, load_ma: f64) -> EfficiencyPoint {
        measure_efficiency(
            ConverterParams::default(),
            SwitchingLossModel::default(),
            32,
            groups,
            Amps(load_ma * 1e-3),
            80,
            20,
        )
    }

    #[test]
    fn efficiency_is_physical() {
        let p = point(8, 1.0);
        let eff = p.efficiency();
        assert!((0.0..1.0).contains(&eff), "efficiency {eff}");
        assert!(eff > 0.5, "a buck at 600 mV should beat 50%: {eff}");
    }

    #[test]
    fn switching_loss_scales_with_groups() {
        let m = SwitchingLossModel::default();
        let e1 = m.energy_per_event(1).value();
        let e8 = m.energy_per_event(8).value();
        assert!((e8 / e1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn light_load_efficiency_is_poor_in_forced_ccm() {
        // At 50 µA the forced-CCM ripple current (~mA) dwarfs the load:
        // conduction and gate-charge losses dominate for *any* group
        // count — the regime where real designs switch to pulse
        // skipping. The model must show this collapse.
        let light_small = point(1, 0.05);
        let light_big = point(8, 0.05);
        assert!(light_small.efficiency() < 0.3);
        assert!(light_big.efficiency() < 0.3);
        // The group trade is a wash here: ripple conduction (∝ R) vs
        // gate charge (∝ groups) — both candidates land in the same
        // band rather than max-groups being free.
        let ratio = light_small.efficiency() / light_big.efficiency();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn light_load_optimum_is_not_the_full_array() {
        let (groups, _) = best_group_count(
            ConverterParams::default(),
            SwitchingLossModel::default(),
            32,
            Amps(0.2e-3),
        );
        assert!(groups < 8, "light load picked the full array ({groups})");
    }

    #[test]
    fn heavy_load_prefers_more_groups() {
        let heavy_small = point(1, 5.0);
        let heavy_big = point(8, 5.0);
        assert!(
            heavy_big.efficiency() > heavy_small.efficiency(),
            "heavy load: 8 groups {:.3} vs 1 group {:.3}",
            heavy_big.efficiency(),
            heavy_small.efficiency()
        );
    }

    #[test]
    fn best_group_count_tracks_the_workload() {
        let params = ConverterParams::default();
        let m = SwitchingLossModel::default();
        let (g_light, _) = best_group_count(params, m, 32, Amps(0.05e-3));
        let (g_heavy, _) = best_group_count(params, m, 32, Amps(5e-3));
        assert!(
            g_heavy > g_light,
            "heavy load {g_heavy} groups vs light load {g_light}"
        );
    }

    #[test]
    fn output_power_matches_v_times_i() {
        let p = point(8, 1.0);
        let expect = p.vout.volts() * 1e-3;
        assert!((p.output_power.value() - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = measure_efficiency(
            ConverterParams::default(),
            SwitchingLossModel::default(),
            32,
            0,
            Amps(1e-3),
            10,
            10,
        );
    }
}
