//! Rail disturbances from converter faults.
//!
//! The fault subsystem injects three converter hazards (comparator
//! glitch, missed PWM edge, reference-word SEU). The first two are
//! transient electrical events whose rail-visible magnitude depends on
//! the converter hardware, so the magnitudes are derived here, next to
//! the component values, instead of being magic numbers in the study
//! code:
//!
//! * a **comparator glitch** makes the duty register step one LSB the
//!   wrong way for one PWM period: the rail follows by one duty LSB of
//!   the battery divider, `vbat / 2^pwm_bits`;
//! * a **missed PWM edge** deletes one conduction window: the LC
//!   filter rides through most of it (its natural period `2π√(LC)` is
//!   several PWM periods), so the droop is the capacitive discharge of
//!   one PWM period scaled by how much of the period the filter leaves
//!   unsmoothed, plus the load's own discharge;
//! * a **reference SEU** is purely digital — the effective word is the
//!   commanded word with one bit flipped ([`reference_upset`]), and
//!   the rail moves to the upset word's operating point.

use subvt_device::units::{Amps, Volts};
use subvt_digital::lut::VoltageWord;

use crate::converter::ConverterParams;

/// Rail droop from one comparator glitch: one duty LSB of the battery
/// divider (`vbat / 2^pwm_bits`; 18.75 mV for the paper's converter).
pub fn comparator_glitch_droop(params: &ConverterParams) -> Volts {
    Volts(params.vbat.volts() / f64::from(1u32 << params.pwm_bits))
}

/// Rail droop from one missed PWM conduction window under `load`.
///
/// The inductor deficit appears as a duty-LSB-scale dip attenuated by
/// the LC filter's smoothing ratio `T_pwm / (2π√(LC))`, and the load
/// meanwhile discharges the output capacitor by `I·T_pwm / C`.
pub fn missed_edge_droop(params: &ConverterParams, load: Amps) -> Volts {
    let t_pwm = f64::from(1u32 << params.pwm_bits) / params.clock.value();
    let l = params.filter.inductance.value();
    let c = params.filter.capacitance.value();
    let natural_period = 2.0 * std::f64::consts::PI * (l * c).sqrt();
    let smoothing = (t_pwm / natural_period).min(1.0);
    let inductor_dip = params.vbat.volts() / f64::from(1u32 << params.pwm_bits) * smoothing;
    let cap_discharge = load.value() * t_pwm / c;
    Volts(inductor_dip + cap_discharge)
}

/// The effective reference word after a single-event upset in bit
/// `bit` of the 6-bit reference register.
pub fn reference_upset(word: VoltageWord, bit: u8) -> VoltageWord {
    word ^ (1 << (bit % 6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_device::constants::DCDC_LSB;

    #[test]
    fn glitch_droop_is_one_lsb_for_the_paper_converter() {
        let droop = comparator_glitch_droop(&ConverterParams::default());
        assert!((droop.volts() - DCDC_LSB.volts()).abs() < 1e-12);
    }

    #[test]
    fn missed_edge_droop_is_a_fraction_of_an_lsb() {
        // With the paper's passives (22 µH, 470 nF) the LC natural
        // period is ~20 µs against a 1 µs PWM period, so the filter
        // absorbs most of the missing window: the droop must land well
        // inside one LSB but stay a visible disturbance.
        let droop = missed_edge_droop(&ConverterParams::default(), Amps(2e-6));
        let lsb = DCDC_LSB.volts();
        assert!(droop.volts() > 0.01 * lsb, "droop {} V", droop.volts());
        assert!(droop.volts() < lsb, "droop {} V", droop.volts());
    }

    #[test]
    fn heavier_loads_droop_more() {
        let params = ConverterParams::default();
        let light = missed_edge_droop(&params, Amps(1e-6));
        let heavy = missed_edge_droop(&params, Amps(50e-6));
        assert!(heavy.volts() > light.volts());
    }

    #[test]
    fn reference_upset_flips_exactly_one_bit() {
        assert_eq!(reference_upset(11, 0), 10);
        assert_eq!(reference_upset(11, 5), 43);
        assert_eq!(reference_upset(reference_upset(19, 3), 3), 19);
        // Bit indices wrap into the 6-bit register.
        assert_eq!(reference_upset(11, 6), 10);
    }
}
