//! Value generators with shrinking.
//!
//! A [`Gen`] both *generates* random values and proposes *shrink
//! candidates* for a failing value — strictly simpler variants tried in
//! order, so a failure report shows the smallest input the harness
//! could find, not the random monster that first tripped the property.

use subvt_rng::{Rng, StdRng};

/// A generator of test values.
///
/// Implemented for primitive `Range`s (`0.12f64..1.3`, `0usize..5`),
/// tuples of generators (one per property argument), and the [`vec`]
/// combinator — the same surface the workspace's former `proptest`
/// strategies covered.
pub trait Gen {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes simpler variants of a failing value, simplest first.
    /// Returning an empty vector ends shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

macro_rules! impl_gen_int_range {
    ($($t:ty),*) => {$(
        impl Gen for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                if v == lo {
                    return Vec::new();
                }
                // Towards the range start: the start itself, the
                // midpoint, one step down.
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
                out.push(v - 1);
                out.dedup();
                out
            }
        }
    )*};
}

impl_gen_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_gen_float_range {
    ($($t:ty),*) => {$(
        impl Gen for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                // Floats shrink by halving the distance to the range
                // start; stop once the step is negligible (or the
                // value is at/below the start, including NaN).
                if v <= lo || v.is_nan() || (v - lo) < (self.end - lo) * 1e-6 {
                    return Vec::new();
                }
                vec![lo, lo + (v - lo) / 2.0]
            }
        }
    )*};
}

impl_gen_float_range!(f32, f64);

/// A vector generator: `len_range.start ..< len_range.end` elements,
/// each drawn from `element`.
///
/// The drop-in replacement for `proptest::collection::vec`.
pub fn vec<G: Gen>(element: G, len_range: std::ops::Range<usize>) -> VecGen<G> {
    assert!(
        len_range.start < len_range.end,
        "empty length range {len_range:?}"
    );
    VecGen { element, len_range }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    element: G,
    len_range: std::ops::Range<usize>,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<G::Value> {
        let len = rng.gen_range(self.len_range.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let min = self.len_range.start;
        // Structural shrinks first: halve, drop one element.
        if value.len() > min {
            out.push(value[..min.max(value.len() / 2)].to_vec());
            let mut minus_one = value.clone();
            minus_one.pop();
            out.push(minus_one);
        }
        // Then element-wise shrinks, first candidate per position.
        for (i, v) in value.iter().enumerate() {
            if let Some(simpler) = self.element.shrink(v).into_iter().next() {
                let mut copy = value.clone();
                copy[i] = simpler;
                out.push(copy);
            }
        }
        out.dedup_by(|a, b| format!("{a:?}") == format!("{b:?}"));
        out
    }
}

macro_rules! impl_gen_tuple {
    ($( ($($g:ident / $idx:tt),+) ),+ $(,)?) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                // One component at a time, holding the others fixed.
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = candidate;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

impl_gen_tuple!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_generates_in_bounds() {
        let g = 3u32..17;
        let mut rng = StdRng::seed_from_u64(0);
        assert!((0..1000).all(|_| (3..17).contains(&g.generate(&mut rng))));
    }

    #[test]
    fn int_shrink_moves_towards_start() {
        let g = 3u32..100;
        assert!(g.shrink(&3).is_empty());
        let candidates = g.shrink(&90);
        assert_eq!(candidates[0], 3);
        assert!(candidates.iter().all(|&c| c < 90));
    }

    #[test]
    fn float_shrink_terminates() {
        let g = 0.5f64..2.0;
        let mut v = 1.9;
        let mut steps = 0;
        while let Some(&next) = g.shrink(&v).first() {
            // Always take the aggressive candidate; must hit bottom.
            v = next;
            steps += 1;
            assert!(steps < 10, "shrink must converge fast when greedy");
        }
        assert_eq!(v, 0.5);
    }

    #[test]
    fn vec_generates_length_in_range() {
        let g = vec(0u8..3, 1..200);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            assert!((1..200).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn vec_shrink_offers_shorter_candidates() {
        let g = vec(0u8..10, 1..50);
        let value = std::vec![9, 8, 7, 6];
        let candidates = g.shrink(&value);
        assert!(candidates.iter().any(|c| c.len() < value.len()));
        assert!(candidates.iter().any(|c| c.len() == value.len()));
    }

    #[test]
    fn tuple_shrink_changes_one_component() {
        let g = (0u32..10, 0u32..10);
        for candidate in g.shrink(&(5, 7)) {
            let changed = usize::from(candidate.0 != 5) + usize::from(candidate.1 != 7);
            assert_eq!(changed, 1, "{candidate:?}");
        }
    }
}
