//! A small, dependency-free bench timer: the `criterion` replacement.
//!
//! Each benchmark gets a warmup phase (to populate caches and pick an
//! iteration count), then `sample_size` timed samples of many
//! iterations each; the reported statistic is the **median** ns/iter,
//! which is robust against scheduler noise in a way the mean is not.
//! Per group, results land in `BENCH_<group>.json` under the bench
//! report directory and are echoed to stdout as `BENCH group/name ...`
//! lines.
//!
//! Environment knobs:
//!
//! * `SUBVT_BENCH_OUT` — report directory (default: the nearest
//!   ancestor `target/` directory, under `bench-reports/`);
//! * `SUBVT_BENCH_SAMPLE_MS` — time budget per sample (default 10 ms);
//! * `SUBVT_BENCH_QUICK=1` forces single-iteration smoke mode,
//!   `SUBVT_BENCH_QUICK=0` forces full timed mode. Without the
//!   variable, the timer runs quick unless a `--bench` argument is
//!   present — `cargo bench` passes `--bench` to `harness = false`
//!   targets, while `cargo test` does not, so benches double as smoke
//!   tests without burning minutes and only `cargo bench` (or
//!   `SUBVT_BENCH_QUICK=0`) produces real timings.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// The top-level timer handed to every bench function by
/// [`bench_main!`](crate::bench_main).
#[derive(Debug)]
pub struct Timer {
    out_dir: std::path::PathBuf,
    quick: bool,
    sample_budget: Duration,
    groups_written: Vec<String>,
}

impl Timer {
    /// Configures a timer from the environment (see module docs).
    pub fn from_env() -> Timer {
        let quick = match std::env::var("SUBVT_BENCH_QUICK").ok().as_deref() {
            Some("1") => true,
            Some("0") => false,
            _ => !std::env::args().any(|a| a == "--bench"),
        };
        let sample_ms = std::env::var("SUBVT_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(10);
        Timer {
            out_dir: report_dir(),
            quick,
            sample_budget: Duration::from_millis(sample_ms),
            groups_written: Vec::new(),
        }
    }

    /// Opens a named benchmark group; results are written when the
    /// group is finished (or dropped).
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            timer: self,
            name: name.to_owned(),
            sample_size: 10,
            items_per_iter: None,
            records: Vec::new(),
            written: false,
        }
    }

    /// The groups whose reports were written, in order.
    pub fn groups_written(&self) -> &[String] {
        &self.groups_written
    }

    /// The directory bench reports land in, for benches that write
    /// sibling artifacts (e.g. a phase-profile text dump).
    pub fn out_dir(&self) -> &std::path::Path {
        &self.out_dir
    }

    /// Whether the timer runs in single-iteration smoke mode (the
    /// default outside `cargo bench`; see [`Timer::from_env`]). Benches
    /// use this to skip timing-based assertions that are meaningless at
    /// one iteration.
    pub fn quick(&self) -> bool {
        self.quick
    }
}

/// The host core count recorded in every report's `machine` block.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A named group of benchmarks sharing a report file.
#[derive(Debug)]
pub struct Group<'a> {
    timer: &'a mut Timer,
    name: String,
    sample_size: usize,
    items_per_iter: Option<f64>,
    records: Vec<Record>,
    written: bool,
}

#[derive(Debug, Clone)]
struct Record {
    name: String,
    samples: usize,
    iters_per_sample: u64,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    items_per_iter: Option<f64>,
}

impl Record {
    /// Items processed per second at the median timing, when the bench
    /// declared a throughput denominator.
    fn items_per_sec(&self) -> Option<f64> {
        self.items_per_iter
            .filter(|_| self.median_ns > 0.0)
            .map(|items| items * 1e9 / self.median_ns)
    }
}

impl Group<'_> {
    /// Sets the number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares how many items one iteration of the *following*
    /// benchmarks processes (e.g. dies per study); their reports then
    /// carry an `items_per_sec` throughput figure alongside the raw
    /// timings. Call with the new denominator before each benchmark it
    /// applies to; it stays in force until changed.
    pub fn throughput(&mut self, items_per_iter: f64) -> &mut Self {
        assert!(
            items_per_iter > 0.0 && items_per_iter.is_finite(),
            "throughput denominator must be a positive finite item count"
        );
        self.items_per_iter = Some(items_per_iter);
        self
    }

    /// Times one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            quick: self.timer.quick,
            sample_size: if self.timer.quick {
                1
            } else {
                self.sample_size
            },
            sample_budget: self.timer.sample_budget,
            result: None,
        };
        f(&mut b);
        let (samples, iters, stats) = b
            .result
            .unwrap_or_else(|| panic!("bench {name:?} never called Bencher::iter"));
        let record = Record {
            name: name.to_owned(),
            samples,
            iters_per_sample: iters,
            median_ns: stats.median,
            mean_ns: stats.mean,
            min_ns: stats.min,
            max_ns: stats.max,
            items_per_iter: self.items_per_iter,
        };
        println!(
            "BENCH {}/{} median {} (mean {}, {} samples x {} iters){}",
            self.name,
            name,
            fmt_ns(record.median_ns),
            fmt_ns(record.mean_ns),
            record.samples,
            record.iters_per_sample,
            fmt_rate(record.items_per_sec()),
        );
        self.records.push(record);
        self
    }

    /// Writes the group's `BENCH_<group>.json` report.
    pub fn finish(&mut self) {
        if self.written {
            return;
        }
        self.written = true;
        let path = self
            .timer
            .out_dir
            .join(format!("BENCH_{}.json", sanitize(&self.name)));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => self.timer.groups_written.push(self.name.clone()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    /// Times `f` exactly once and records the wall time as a
    /// single-sample benchmark. For routines too long to warm up and
    /// sample repeatedly (a 10⁶-die fleet study takes minutes); the
    /// run's return value is handed back so the bench can assert on
    /// the computed result, not just its timing.
    pub fn bench_once<O>(&mut self, name: &str, f: impl FnOnce() -> O) -> O {
        let start = Instant::now();
        let out = black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        let record = Record {
            name: name.to_owned(),
            samples: 1,
            iters_per_sample: 1,
            median_ns: ns,
            mean_ns: ns,
            min_ns: ns,
            max_ns: ns,
            items_per_iter: self.items_per_iter,
        };
        println!(
            "BENCH {}/{} once {}{}",
            self.name,
            name,
            fmt_ns(ns),
            fmt_rate(record.items_per_sec()),
        );
        self.records.push(record);
        out
    }

    /// Median ns/iter of an already-run benchmark in this group, for
    /// in-bench assertions (e.g. "the fast path is ≥ N× the
    /// reference"). `None` until `bench_function(name, ..)` has run.
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    }

    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"subvt-bench-v3\",");
        let _ = writeln!(out, "  \"group\": \"{}\",", escape_json(&self.name));
        let _ = writeln!(out, "  \"quick\": {},", self.timer.quick);
        let _ = writeln!(out, "  \"machine\": {{\"cores\": {}}},", host_cores());
        let _ = writeln!(out, "  \"benchmarks\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let throughput = match (r.items_per_iter, r.items_per_sec()) {
                (Some(items), Some(rate)) => format!(
                    ", \"items_per_iter\": {}, \"items_per_sec\": {}",
                    json_f64(items),
                    json_f64(rate)
                ),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
                 \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}{throughput}}}{comma}",
                escape_json(&r.name),
                r.samples,
                r.iters_per_sample,
                json_f64(r.median_ns),
                json_f64(r.mean_ns),
                json_f64(r.min_ns),
                json_f64(r.max_ns),
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

impl Drop for Group<'_> {
    fn drop(&mut self) {
        // `finish()` is idempotent; dropping an unfinished group still
        // writes its report, so forgetting the call costs nothing.
        self.finish();
    }
}

/// Runs and times one routine. Handed to the closure of
/// [`Group::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    sample_budget: Duration,
    result: Option<(usize, u64, Stats)>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    median: f64,
    mean: f64,
    min: f64,
    max: f64,
}

impl Bencher {
    /// Times `f`, keeping its return value alive through
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            // Smoke mode: a single run proves the routine executes.
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            self.result = Some((
                1,
                1,
                Stats {
                    median: ns,
                    mean: ns,
                    min: ns,
                    max: ns,
                },
            ));
            return;
        }

        // Warmup: run for ~3 sample budgets to stabilize caches and
        // measure a rough per-iteration cost.
        let warmup_budget = self.sample_budget * 3;
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget || warmup_iters < 3 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(0.1);
        let iters_per_sample = ((self.sample_budget.as_nanos() as f64 / per_iter_ns) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = samples_ns.len();
        let median = if n % 2 == 1 {
            samples_ns[n / 2]
        } else {
            0.5 * (samples_ns[n / 2 - 1] + samples_ns[n / 2])
        };
        let mean = samples_ns.iter().sum::<f64>() / n as f64;
        self.result = Some((
            n,
            iters_per_sample,
            Stats {
                median,
                mean,
                min: samples_ns[0],
                max: samples_ns[n - 1],
            },
        ));
    }
}

/// Declares the `main` of a `harness = false` bench target: runs each
/// listed function with a shared [`Timer`].
#[macro_export]
macro_rules! bench_main {
    ($($func:path),+ $(,)?) => {
        fn main() {
            let mut timer = $crate::bench::Timer::from_env();
            $( $func(&mut timer); )+
        }
    };
}

/// The directory reports are written to.
fn report_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("SUBVT_BENCH_OUT") {
        return std::path::PathBuf::from(dir);
    }
    // Prefer the workspace `target/` so reports live with other build
    // artifacts; benches run with the package root as cwd, so walk up.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        let candidate = dir.join("target");
        if candidate.is_dir() {
            return candidate.join("bench-reports");
        }
        if !dir.pop() {
            return std::path::PathBuf::from("target/bench-reports");
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Inf; timings are finite by construction but guard
/// anyway.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

/// Formats an optional items/sec rate as a stdout suffix, scaled to
/// keep the mantissa readable; empty when no throughput was declared.
fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) if r >= 1_000_000.0 => format!(" [{:.2} Mitems/s]", r / 1_000_000.0),
        Some(r) if r >= 1_000.0 => format!(" [{:.2} kitems/s]", r / 1_000.0),
        Some(r) => format!(" [{r:.1} items/s]"),
        None => String::new(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_timer(dir: &std::path::Path) -> Timer {
        Timer {
            out_dir: dir.to_owned(),
            quick: true,
            sample_budget: Duration::from_millis(1),
            groups_written: Vec::new(),
        }
    }

    #[test]
    fn report_file_is_written_with_expected_shape() {
        let dir = std::env::temp_dir().join("subvt-testkit-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut timer = quick_timer(&dir);
        {
            let mut g = timer.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_function("spin", |b| b.iter(|| (0..100).sum::<u64>()));
            g.finish();
        }
        assert_eq!(timer.groups_written(), ["unit".to_owned()]);
        let json = std::fs::read_to_string(dir.join("BENCH_unit.json")).unwrap();
        assert!(json.contains("\"schema\": \"subvt-bench-v3\""), "{json}");
        assert!(json.contains("\"group\": \"unit\""), "{json}");
        assert!(
            json.contains(&format!("\"machine\": {{\"cores\": {}}}", host_cores())),
            "{json}"
        );
        assert!(json.contains("\"name\": \"noop\""), "{json}");
        assert!(json.contains("\"median_ns\""), "{json}");
        // No throughput denominator declared, so no rate fields.
        assert!(!json.contains("items_per_sec"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn throughput_adds_rate_fields_to_following_benches() {
        let dir = std::env::temp_dir().join("subvt-testkit-bench-throughput-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut timer = quick_timer(&dir);
        {
            let mut g = timer.benchmark_group("rate");
            g.bench_function("plain", |b| b.iter(|| 1 + 1));
            g.throughput(1024.0);
            g.bench_function("batched", |b| b.iter(|| (0..100).sum::<u64>()));
            g.throughput(4096.0);
            g.bench_once("mega", || (0..1000).sum::<u64>());
            let batched = g.records.iter().find(|r| r.name == "batched").unwrap();
            assert_eq!(batched.items_per_iter, Some(1024.0));
            let rate = batched.items_per_sec().unwrap();
            assert!(rate > 0.0 && rate.is_finite(), "{rate}");
            assert_eq!(
                g.records
                    .iter()
                    .find(|r| r.name == "plain")
                    .unwrap()
                    .items_per_iter,
                None
            );
            g.finish();
        }
        let json = std::fs::read_to_string(dir.join("BENCH_rate.json")).unwrap();
        assert!(json.contains("\"items_per_iter\": 1024.000"), "{json}");
        assert!(json.contains("\"items_per_iter\": 4096.000"), "{json}");
        assert!(json.contains("\"items_per_sec\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn median_is_queryable_by_name() {
        let dir = std::env::temp_dir().join("subvt-testkit-bench-median-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut timer = quick_timer(&dir);
        let mut g = timer.benchmark_group("query");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert!(g.median_ns("noop").unwrap() > 0.0);
        assert_eq!(g.median_ns("missing"), None);
        drop(g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_an_unfinished_group_still_writes() {
        let dir = std::env::temp_dir().join("subvt-testkit-bench-drop-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut timer = quick_timer(&dir);
        {
            let mut g = timer.benchmark_group("dropped");
            g.bench_function("noop", |b| b.iter(|| 2 + 2));
            // no finish()
        }
        assert!(dir.join("BENCH_dropped.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_once_records_a_single_sample_and_returns_the_value() {
        let dir = std::env::temp_dir().join("subvt-testkit-bench-once-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut timer = quick_timer(&dir);
        let mut g = timer.benchmark_group("once");
        let value = g.bench_once("slow", || (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        let r = &g.records[0];
        assert_eq!((r.samples, r.iters_per_sample), (1, 1));
        assert!(g.median_ns("slow").unwrap() > 0.0);
        drop(g);
        let json = std::fs::read_to_string(dir.join("BENCH_once.json")).unwrap();
        assert!(json.contains("\"name\": \"slow\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timed_mode_produces_ordered_stats() {
        let dir = std::env::temp_dir().join("subvt-testkit-bench-stats-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut timer = quick_timer(&dir);
        timer.quick = false;
        timer.sample_budget = Duration::from_micros(200);
        let mut g = timer.benchmark_group("stats");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..500).sum::<u64>()));
        let r = &g.records[0];
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns > 0.0);
        drop(g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn forgetting_iter_is_an_error() {
        let dir = std::env::temp_dir().join("subvt-testkit-bench-noiter-test");
        let mut timer = quick_timer(&dir);
        let mut g = timer.benchmark_group("broken");
        g.bench_function("empty", |_b| {});
    }
}
