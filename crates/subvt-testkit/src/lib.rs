//! Hermetic test infrastructure for the subvt workspace.
//!
//! Two in-tree subsystems replace the external dev-dependencies the
//! offline build cannot fetch:
//!
//! * a **property-test harness** ([`Checker`], the [`properties!`]
//!   macro, the [`Gen`] trait) with shrinking and a regression-seed
//!   replay file — the `proptest` replacement;
//! * a **bench timer** ([`bench`]) with warmup, median-of-N sampling
//!   and `BENCH_<group>.json` reports — the `criterion` replacement.
//!
//! Everything is seeded deterministically: a property's case sequence
//! is a pure function of the property's name (override with
//! `SUBVT_PROP_SEED`), so two consecutive `cargo test` runs execute
//! byte-identical draws.
//!
//! # Writing properties
//!
//! ```
//! use subvt_testkit::prelude::*;
//!
//! properties! {
//!     cases = 64;
//!
//!     /// Addition never loses items.
//!     fn sum_is_monotone(a in 0u32..1000, b in 1u32..1000) {
//!         prop_assert!(a + b > a, "{a} + {b} must exceed {a}");
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! On failure the harness shrinks the input towards the range starts,
//! prints the minimal counterexample with its case seed, and appends a
//! `cc <name> <seed>` line to `tests/testkit-regressions.txt` so the
//! case replays first on every subsequent run.

pub mod bench;
pub mod gen;

pub use gen::{vec, Gen, VecGen};

use subvt_rng::{splitmix64, StdRng};

/// Items a property body needs in scope.
pub mod prelude {
    pub use crate::gen::{vec, Gen};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, properties, Checker, PropError};
}

/// Why a property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy the property's assumptions
    /// ([`prop_assume!`]); the case is discarded, not failed.
    Reject,
}

impl PropError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> PropError {
        PropError::Fail(msg.into())
    }
}

/// The result of one property-case execution.
pub type PropResult = Result<(), PropError>;

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropError::fail(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::PropError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case when its input violates an assumption.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropError::Reject);
        }
    };
}

/// Declares a block of property tests.
///
/// Each `fn name(arg in generator, ...) { body }` becomes a `#[test]`
/// running `cases` random cases (default 64). Bodies use
/// [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
#[macro_export]
macro_rules! properties {
    (cases = $cases:expr; $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::Checker::new(::core::stringify!($name))
                    .cases($cases)
                    .run(($($gen,)+), |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block)*) => {
        $crate::properties!(cases = 64; $($(#[$meta])* fn $name($($arg in $gen),+) $body)*);
    };
}

/// Runs one property over many generated cases, shrinking failures.
#[derive(Debug, Clone)]
pub struct Checker {
    name: String,
    cases: u32,
    seed: u64,
    regressions: Option<std::path::PathBuf>,
}

/// Default location of the regression-seed replay file, relative to the
/// directory `cargo test` runs the suite from (the package root).
pub const REGRESSIONS_FILE: &str = "tests/testkit-regressions.txt";

impl Checker {
    /// A checker for the named property.
    ///
    /// The base seed is derived from the name (so each property owns a
    /// stable, independent stream) unless `SUBVT_PROP_SEED` overrides
    /// it.
    pub fn new(name: &str) -> Checker {
        let seed = match std::env::var("SUBVT_PROP_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("SUBVT_PROP_SEED must be a u64, got {s:?}")),
            Err(_) => fnv1a64(name.as_bytes()),
        };
        Checker {
            name: name.to_owned(),
            cases: 64,
            seed,
            regressions: Some(std::path::PathBuf::from(REGRESSIONS_FILE)),
        }
    }

    /// Sets the number of cases (default 64; `SUBVT_PROP_CASES`
    /// overrides globally).
    pub fn cases(mut self, cases: u32) -> Checker {
        self.cases = cases;
        self
    }

    /// Uses a non-default regression replay file (or `None` to disable
    /// replay/recording).
    pub fn regressions_file(mut self, path: Option<std::path::PathBuf>) -> Checker {
        self.regressions = path;
        self
    }

    /// Runs the property.
    ///
    /// Replays any recorded regression seeds for this property first,
    /// then `cases` fresh cases. Panics (failing the test) with the
    /// shrunk counterexample on the first falsified case.
    pub fn run<G, F>(self, gen: G, mut prop: F)
    where
        G: Gen,
        F: FnMut(G::Value) -> PropResult,
    {
        for seed in self.recorded_seeds() {
            self.run_case(&gen, &mut prop, seed, true);
        }

        let cases = match std::env::var("SUBVT_PROP_CASES") {
            Ok(s) => s
                .parse::<u32>()
                .unwrap_or_else(|_| panic!("SUBVT_PROP_CASES must be a u32, got {s:?}")),
            Err(_) => self.cases,
        };

        let mut state = self.seed;
        let mut executed = 0u32;
        let mut discarded = 0u32;
        while executed < cases {
            let case_seed = splitmix64(&mut state);
            match self.try_case(&gen, &mut prop, case_seed) {
                Ok(()) => executed += 1,
                Err(PropError::Reject) => {
                    discarded += 1;
                    assert!(
                        discarded < cases.saturating_mul(10) + 100,
                        "property {}: too many rejected cases ({discarded}) — \
                         weaken the prop_assume! or narrow the generators",
                        self.name
                    );
                }
                Err(PropError::Fail(msg)) => {
                    self.report_failure(&gen, &mut prop, case_seed, &msg, false);
                }
            }
        }
    }

    /// Generates and runs the single case addressed by `seed`,
    /// panicking on failure.
    fn run_case<G, F>(&self, gen: &G, prop: &mut F, seed: u64, replay: bool)
    where
        G: Gen,
        F: FnMut(G::Value) -> PropResult,
    {
        if let Err(PropError::Fail(msg)) = self.try_case(gen, prop, seed) {
            self.report_failure(gen, prop, seed, &msg, replay);
        }
    }

    fn try_case<G, F>(&self, gen: &G, prop: &mut F, seed: u64) -> PropResult
    where
        G: Gen,
        F: FnMut(G::Value) -> PropResult,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        prop(gen.generate(&mut rng))
    }

    /// Shrinks the failing case, records its seed, and panics with the
    /// minimal counterexample.
    fn report_failure<G, F>(&self, gen: &G, prop: &mut F, seed: u64, msg: &str, replay: bool) -> !
    where
        G: Gen,
        F: FnMut(G::Value) -> PropResult,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut value = gen.generate(&mut rng);
        let mut message = msg.to_owned();
        let mut shrinks = 0u32;
        'outer: while shrinks < 1000 {
            for candidate in gen.shrink(&value) {
                if let Err(PropError::Fail(m)) = prop(candidate.clone()) {
                    value = candidate;
                    message = m;
                    shrinks += 1;
                    continue 'outer;
                }
            }
            break;
        }
        if !replay {
            self.record_seed(seed);
        }
        let origin = if replay { " (replayed regression)" } else { "" };
        panic!(
            "property {} falsified{origin} after {shrinks} shrinks\n\
             minimal input: {value:?}\n\
             case seed: {seed}\n\
             {message}\n\
             (recorded in {}; the case replays first on the next run)",
            self.name,
            self.regressions
                .as_deref()
                .unwrap_or(std::path::Path::new("<disabled>"))
                .display(),
        );
    }

    /// Seeds recorded for this property in the regressions file.
    fn recorded_seeds(&self) -> Vec<u64> {
        let Some(path) = &self.regressions else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("cc"), Some(name), Some(seed)) if name == self.name => seed.parse().ok(),
                    _ => None,
                }
            })
            .collect()
    }

    /// Best-effort append of a failing seed to the regressions file.
    fn record_seed(&self, seed: u64) {
        use std::io::Write as _;
        let Some(path) = &self.regressions else {
            return;
        };
        if self.recorded_seeds().contains(&seed) {
            return;
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "cc {} {}", self.name, seed);
        }
    }
}

/// FNV-1a 64-bit: stable name → seed derivation.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_checker(name: &str) -> Checker {
        Checker::new(name).regressions_file(None)
    }

    #[test]
    fn passing_property_passes() {
        quiet_checker("always_true").cases(50).run(0u32..10, |v| {
            prop_assert!(v < 10);
            Ok(())
        });
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let result = std::panic::catch_unwind(|| {
            quiet_checker("fails_above_4")
                .cases(200)
                .run(0u32..100, |v| {
                    prop_assert!(v <= 4, "{v} exceeds 4");
                    Ok(())
                });
        });
        let msg = *result
            .expect_err("must falsify")
            .downcast::<String>()
            .unwrap();
        // The minimal counterexample is 5 — shrinking must find it
        // exactly, not merely something small.
        assert!(msg.contains("minimal input: 5"), "{msg}");
    }

    #[test]
    fn tuple_failure_shrinks_to_the_boundary() {
        // The last failing input the property sees is the shrunk
        // minimum; per-component shrinking must drive the sum down to
        // exactly the failure boundary.
        let minimal = std::cell::RefCell::new(None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            quiet_checker("sum_bound")
                .cases(300)
                .run((0u32..50, 0u32..50), |(a, b)| {
                    if a + b >= 30 {
                        *minimal.borrow_mut() = Some((a, b));
                    }
                    prop_assert!(a + b < 30, "{a}+{b}");
                    Ok(())
                });
        }));
        assert!(result.is_err(), "property must falsify");
        let (a, b) = minimal.into_inner().expect("saw a failing input");
        assert_eq!(a + b, 30, "stopped above the boundary: ({a}, {b})");
    }

    #[test]
    fn rejection_resamples_instead_of_failing() {
        let mut ran = 0u32;
        quiet_checker("assume_even").cases(20).run(0u32..100, |v| {
            prop_assume!(v % 2 == 0);
            ran += 1;
            prop_assert!(v % 2 == 0);
            Ok(())
        });
        assert_eq!(ran, 20, "all counted cases must satisfy the assumption");
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn impossible_assumption_gives_up() {
        quiet_checker("assume_never").cases(10).run(0u32..100, |_| {
            prop_assume!(false);
            Ok(())
        });
    }

    #[test]
    fn case_sequence_is_deterministic() {
        let collect = || {
            let mut values = Vec::new();
            quiet_checker("stable_stream")
                .cases(30)
                .run(0u64..1_000_000, |v| {
                    values.push(v);
                    Ok(())
                });
            values
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_properties_draw_different_streams() {
        let collect = |name: &str| {
            let mut values = Vec::new();
            quiet_checker(name).cases(10).run(0u64..1_000_000, |v| {
                values.push(v);
                Ok(())
            });
            values
        };
        assert_ne!(collect("stream_a"), collect("stream_b"));
    }

    #[test]
    fn regression_file_round_trip() {
        let dir = std::env::temp_dir().join("subvt-testkit-regress-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("regressions.txt");
        let checker = || {
            Checker::new("recorded_prop")
                .cases(100)
                .regressions_file(Some(path.clone()))
        };
        let failing = std::panic::catch_unwind(|| {
            checker().run(0u32..100, |v| {
                prop_assert!(v < 90, "{v}");
                Ok(())
            });
        });
        assert!(failing.is_err());
        let recorded = std::fs::read_to_string(&path).expect("seed recorded");
        assert!(recorded.starts_with("cc recorded_prop "), "{recorded}");

        // The recorded seed replays (and still fails) before fresh cases.
        let replayed = std::panic::catch_unwind(|| {
            checker().run(0u32..100, |v| {
                prop_assert!(v < 90, "{v}");
                Ok(())
            });
        });
        let msg = *replayed
            .expect_err("must refail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("replayed regression"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
