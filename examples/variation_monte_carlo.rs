//! Monte-Carlo yield study: how does the controller behave across a
//! population of virtual dies with sampled threshold variation?
//!
//! Prints a histogram of the LUT corrections the sensor settled on and
//! the spread of energy savings — the statistical version of the
//! paper's single SS-die worked example. The dies fan out across
//! worker threads via `subvt-exec` (`--jobs`/`SUBVT_JOBS`); results
//! are bit-identical for any thread count.
//!
//! ```bash
//! cargo run --release --example variation_monte_carlo
//! ```

use std::collections::BTreeMap;
use subvt::prelude::*;
use subvt_rng::{Rng, StdRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DIES: usize = 40;
    let model = VariationModel::st_130nm();
    let mut rng = StdRng::seed_from_u64(1234);

    // Each die owns a label-addressed stream forked off the root seed,
    // so rerunning a single die reproduces it exactly. Drawing the
    // fork seeds serially here keeps the population independent of how
    // the per-die experiments are scheduled below.
    let seeds: Vec<u64> = (0..DIES)
        .map(|die| rng.fork_seed(&format!("die-{die}")))
        .collect();

    let reports = par_map_indexed(&ExecConfig::from_env(), DIES, |die| {
        let mut die_rng = StdRng::seed_from_u64(seeds[die]);
        let variation = model.sample_die(&mut die_rng);
        let mut scenario = Scenario::paper_worked_example().with_actual_env(Environment::nominal());
        scenario.name = format!("die-{die}");
        scenario.die = variation.mean_gate();
        scenario.seed = 5_000 + die as u64;
        savings_experiment(&scenario)
    });

    let mut shift_histogram: BTreeMap<i16, usize> = BTreeMap::new();
    let mut savings = Vec::with_capacity(DIES);
    let mut uncorrected_excess = Vec::with_capacity(DIES);
    for report in reports {
        let report = report?;
        *shift_histogram
            .entry(report.compensated.compensation)
            .or_default() += 1;
        savings.push(report.savings_vs_fixed());
        uncorrected_excess.push(report.savings_vs_uncompensated());
    }

    println!("LUT correction across {DIES} sampled dies:");
    for (shift, count) in &shift_histogram {
        println!("  {shift:+} LSB: {}", "#".repeat(*count));
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let min = |v: &[f64]| v.iter().copied().fold(f64::MAX, f64::min);
    let max = |v: &[f64]| v.iter().copied().fold(f64::MIN, f64::max);

    println!(
        "\nsavings vs fixed supply: mean {:.1}%, range {:.1}% .. {:.1}%",
        mean(&savings) * 100.0,
        min(&savings) * 100.0,
        max(&savings) * 100.0
    );
    println!(
        "savings attributable to compensation alone: mean {:.2}%, worst {:.2}%",
        mean(&uncorrected_excess) * 100.0,
        min(&uncorrected_excess) * 100.0
    );
    println!(
        "\n(On most near-typical dies no correction fires; the tails of the \
         distribution get the paper's ±1 LSB treatment.)"
    );
    Ok(())
}
