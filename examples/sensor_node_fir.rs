//! A scavenging-powered sensor node running the paper's second load: the
//! 9-tap subthreshold FIR filter (paper ref. [4]).
//!
//! A noisy sine wave arrives in bursts (the sensor wakes, samples,
//! sleeps); the adaptive controller rides the queue, dropping to the
//! FIR's minimum-energy point between bursts. The example checks the
//! filter really filters — output noise must shrink — while the
//! controller really saves energy vs a fixed-supply design.
//!
//! ```bash
//! cargo run --example sensor_node_fir
//! ```

use subvt::prelude::*;
use subvt_device::units::Hertz;
use subvt_rng::Rng;
use subvt_rng::StdRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::st_130nm();
    let design_env = Environment::nominal();
    let mut rng = StdRng::seed_from_u64(99);

    // --- The DSP itself: filter a noisy tone, measure noise rejection.
    let mut fir = FirFilter::lowpass_9tap();
    let q15 = f64::from(subvt_loads::Q15);
    let samples: Vec<i32> = (0..512)
        .map(|i| {
            let t = f64::from(i);
            let tone = (t * 0.05 * std::f64::consts::TAU).sin() * 0.4;
            let noise =
                (t * 0.45 * std::f64::consts::TAU).sin() * 0.3 + (rng.gen::<f64>() - 0.5) * 0.1;
            ((tone + noise) * q15) as i32
        })
        .collect();
    let filtered = fir.filter(&samples);
    let rms = |v: &[i32]| {
        (v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>() / v.len() as f64).sqrt()
    };
    // High-frequency content estimate: first difference RMS.
    let hf = |v: &[i32]| {
        let d: Vec<i32> = v.windows(2).map(|w| w[1] - w[0]).collect();
        rms(&d)
    };
    println!(
        "FIR: input HF content {:.0}, output HF content {:.0} (lower = cleaner)",
        hf(&samples),
        hf(&filtered[16..])
    );

    // --- The controller driving the FIR as its load.
    let fir_load = FirFilter::lowpass_9tap();
    let fir_mep = find_mep(
        &tech,
        fir_load.profile(),
        design_env,
        Volts(0.12),
        Volts(0.6),
    )?;
    println!(
        "FIR MEP at TT: {:.0} mV, {:.2} fJ/sample",
        fir_mep.vopt.millivolts(),
        fir_mep.energy.femtos()
    );

    let rate = RateController::design(
        &tech,
        &fir_load,
        design_env,
        &[(8, Hertz(200e3)), (16, Hertz(1e6)), (32, Hertz(5e6))],
    )?;

    // Bursty sampling: 4 samples/cycle for 20 cycles, then 180 idle.
    let workload = WorkloadPattern::Burst {
        busy_rate: 4,
        busy_cycles: 20,
        idle_cycles: 180,
    };

    let run = |policy: SupplyPolicy| -> RunSummary {
        let mut controller = AdaptiveController::new(
            tech.clone(),
            FirFilter::lowpass_9tap(),
            rate.clone(),
            design_env,
            Environment::at_corner(ProcessCorner::Ss), // slow silicon
            GateMismatch::NOMINAL,
            policy,
            SupplyKind::Ideal,
            ControllerConfig::default(),
        );
        let mut source = WorkloadSource::new(workload.clone());
        let mut wl_rng = StdRng::seed_from_u64(7);
        controller.run(&mut source, 3_000, &mut wl_rng)
    };

    let adaptive = run(SupplyPolicy::AdaptiveCompensated);
    let fixed = run(SupplyPolicy::FixedWord(24)); // design-time safe supply

    println!(
        "adaptive: {} samples, mean Vdd {:.0} mV, LUT shift {:+}, {:.1} pJ total",
        adaptive.operations,
        adaptive.mean_vout.millivolts(),
        adaptive.compensation,
        adaptive.account.total().value() * 1e12,
    );
    println!(
        "fixed:    {} samples, Vdd 450 mV, {:.1} pJ total",
        fixed.operations,
        fixed.account.total().value() * 1e12,
    );
    println!(
        "energy saved by the controller: {:.0}%",
        adaptive.account.savings_vs(&fixed.account) * 100.0
    );
    Ok(())
}
