//! Drive the switched DC-DC converter through the paper's Fig. 6
//! schedule and dump the output-voltage waveform as CSV (plottable with
//! any tool) plus per-segment regulation statistics.
//!
//! ```bash
//! cargo run --release --example dcdc_regulation > fig6_trace.csv
//! ```
//!
//! The CSV goes to stdout; the human-readable summary goes to stderr.

use subvt::prelude::*;
use subvt_dcdc::ConstantLoad;
use subvt_device::units::Amps;
use subvt_sim::trace::TraceSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = run_transient(
        ConverterParams::default(),
        Box::new(ConstantLoad(Amps(5e-6))),
        &fig6_schedule(),
    );

    eprintln!("Fig. 6 transient — 3 commanded words on the switched converter");
    for seg in &result.segments {
        eprintln!(
            "word {:2} → target {:7.2} mV | settled {:7.2} mV | ripple {:5.2} mV | settles in {} µs",
            seg.word,
            seg.target.millivolts(),
            seg.settled.millivolts(),
            seg.ripple.millivolts(),
            seg.settling_cycles
                .map_or("??".to_owned(), |c| c.to_string()),
        );
    }

    let mut set = TraceSet::new();
    set.add(result.trace);
    set.write_csv(std::io::stdout().lock())?;
    Ok(())
}
