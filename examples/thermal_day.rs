//! A day in the life of a deployed sensor node: ambient temperature
//! cycles (night → noon sun → night) while the controller runs, and
//! everything it does is exported as waveforms.
//!
//! ```bash
//! cargo run --release --example thermal_day > thermal_day.vcd
//! gtkwave thermal_day.vcd   # or any VCD viewer
//! ```
//!
//! The human-readable summary goes to stderr; the VCD to stdout.

use subvt::prelude::*;
use subvt_core::drift::{run_with_drift, DriftSchedule};
use subvt_rng::StdRng;
use subvt_sim::vcd::VcdWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::st_130nm();
    let design = Environment::nominal();
    let rate = design_rate_controller(&tech, design)?;

    // The silicon is a slightly slow die (sampled once, fixed).
    let die = GateMismatch {
        nmos_dvth: Volts(0.012),
        pmos_dvth: Volts(0.012),
    };

    let mut controller = AdaptiveController::new(
        tech,
        RingOscillator::paper_circuit(),
        rate,
        design,
        design,
        die,
        SupplyPolicy::AdaptiveCompensated,
        SupplyKind::Ideal,
        ControllerConfig::default(),
    );

    // A compressed "day": each segment is 150 system cycles (150 µs of
    // simulated time standing in for hours of wall clock).
    let day = DriftSchedule::new(vec![
        (0, Environment::at_celsius(10.0)),   // pre-dawn
        (150, Environment::at_celsius(25.0)), // morning
        (300, Environment::at_celsius(45.0)), // noon sun on the enclosure
        (450, Environment::at_celsius(25.0)), // evening
        (600, Environment::at_celsius(10.0)), // night
    ]);

    // Periodic sensing bursts (the node wakes, samples, sleeps).
    let workload = WorkloadPattern::Burst {
        busy_rate: 2,
        busy_cycles: 5,
        idle_cycles: 45,
    };
    let mut source = WorkloadSource::new(workload);
    let mut rng = StdRng::seed_from_u64(2026);

    let result = run_with_drift(&mut controller, &day, &mut source, 750, &mut rng);

    eprintln!("thermal day on a +12 mV die:");
    for (i, &(start, comp)) in result.segment_compensation.iter().enumerate() {
        let env = day.segments()[i].1;
        eprintln!(
            "  from {start:>3} µs at {:>4.0} °C → compensation {comp:+} LSB",
            env.temperature.celsius()
        );
    }
    let summary = controller.summary();
    eprintln!(
        "  {} ops, {} dropped, {:.1} pJ total, mean supply {:.0} mV",
        summary.operations,
        summary.dropped,
        summary.account.total().value() * 1e12,
        summary.mean_vout.millivolts()
    );

    // Waveforms: the controller's own history as VCD real lanes.
    let traces = controller.history_traces();
    let mut vcd = VcdWriter::new("thermal_day");
    for i in 0.. {
        match traces.trace(i) {
            Some(t) => {
                vcd.add_analog(t.clone());
            }
            None => break,
        }
    }
    vcd.write(std::io::stdout().lock())?;
    Ok(())
}
