//! Quickstart: the paper's story in five steps.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use subvt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::st_130nm();

    // 1. Subthreshold logic has a minimum-energy point (MEP) below Vth.
    let ring = CircuitProfile::ring_oscillator();
    let mep = find_mep(
        &tech,
        &ring,
        Environment::nominal(),
        Volts(0.12),
        Volts(0.6),
    )?;
    println!(
        "1. Ring-oscillator MEP at the typical corner: {:.0} mV, {:.2} fJ/op (paper: 200 mV, 2.65 fJ)",
        mep.vopt.millivolts(),
        mep.energy.femtos()
    );

    // 2. Process corners move the MEP — a fixed supply misses it.
    for corner in [ProcessCorner::Ss, ProcessCorner::Fs] {
        let shifted = find_mep(
            &tech,
            &ring,
            Environment::at_corner(corner),
            Volts(0.12),
            Volts(0.6),
        )?;
        println!(
            "2. At the {corner} corner the MEP moves to {:.0} mV, {:.2} fJ/op",
            shifted.vopt.millivolts(),
            shifted.energy.femtos()
        );
    }

    // 3. The TDC delay replica reads the shift as a digital signature.
    let sensor = VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
    let deviation = sensor.sense(
        &tech,
        19,
        word_voltage(19),
        Environment::at_corner(ProcessCorner::Ss),
        GateMismatch::NOMINAL,
    )?;
    println!(
        "3. On slow silicon the sensor reads {deviation} LSB at word 19 (slow ⇒ raise the supply)"
    );

    // 4. The DC-DC converter turns 6-bit words into supply voltages.
    let mut dcdc = DcDcConverter::new(ConverterParams::default(), Box::new(NoLoad));
    dcdc.set_word(19);
    dcdc.run_system_cycles(80);
    println!(
        "4. Word 19 regulates the switched converter to {:.1} mV (ideal: 356.25 mV, resolution 18.75 mV)",
        dcdc.vout().millivolts()
    );

    // 5. The assembled controller corrects the LUT and saves energy.
    let report = savings_experiment(&Scenario::paper_worked_example())?;
    println!(
        "5. TT-designed controller on a slow die: LUT corrected by {:+} LSB, \
         {:.0}% energy saved vs a fixed supply (paper: \"up to 55%\")",
        report.compensated.compensation,
        report.savings_vs_fixed() * 100.0
    );
    Ok(())
}
