//! Mitigation-technique matchup: the paper's adaptive voltage scaling
//! (AVS) vs the alternatives it cites — adaptive body biasing (ABB,
//! ref. [8]), device upsizing (refs. [5][7]) and race-to-idle with a
//! fixed supply (the strategy ref. [10] argues against).
//!
//! ```bash
//! cargo run --release --example mitigation_matchup
//! ```

use subvt::prelude::*;
use subvt_core::idle_policy::compare_idle_policies;
use subvt_device::units::Hertz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::st_130nm();
    let env = Environment::nominal();
    let ring = RingOscillator::paper_circuit();

    println!("The die: 18.75 mV slow (one DC-DC LSB of effective Vth shift)\n");
    let slow_die = GateMismatch {
        nmos_dvth: Volts(0.018_75),
        pmos_dvth: Volts(0.018_75),
    };
    let sensor = VariationSensor::new(&tech, env, SensorConfig::default());

    // --- 1. AVS (the paper): shift the supply one LSB up.
    let avs_residual = sensor.sense(&tech, 12, word_voltage(13), env, slow_die)?;
    println!("AVS   : supply 225.00 mV (word 12+1) → sensor residual {avs_residual} LSB");

    // --- 2. ABB: park the supply at the design word, forward-bias the wells.
    let mut abb = AbbCompensator::new(BodyEffect::bulk_130nm());
    let (bias, abb_residual) = abb.converge(&tech, &sensor, 12, env, slow_die, 8)?;
    println!(
        "ABB   : supply 225.00 mV (word 12), wells at {:+.0} mV forward → residual {abb_residual} LSB ({} iterations)",
        bias.nmos_vbs.millivolts(),
        abb.iterations()
    );
    println!(
        "        actuation window: the bulk junction allows ≈{:.0} mV of Vth trim — corner-scale\n        shifts fit, full temperature swings do not",
        (BodyEffect::bulk_130nm().vth_shift(Volts(0.5))
            - BodyEffect::bulk_130nm().vth_shift(Volts(-1.2)))
        .millivolts()
        .abs()
    );

    // --- 3. Sizing: pay area and MEP energy for mismatch immunity.
    println!("\nDesign-time sizing (no runtime knob at all):");
    for p in sizing_sweep(
        &tech,
        &CircuitProfile::ring_oscillator(),
        env,
        Volts(0.012),
        &[1.0, 4.0, 16.0],
    ) {
        println!(
            "  upsize {:>2.0}×: MEP {:.2} fJ (σ ×{:.2}), 3σ guard-band energy {:.2} fJ",
            p.upsize,
            p.mep_energy.femtos(),
            p.relative_sigma,
            p.guardband_energy.femtos()
        );
    }

    // --- 4. Race-to-idle at a fixed fast supply vs rate-matched DVS.
    println!("\nRun-slow vs race-to-idle (50 kHz workload, 5% sleep retention):");
    let cmp = compare_idle_policies(&tech, &ring, env, Hertz(50e3), Volts(0.6), 0.05)?;
    println!(
        "  DVS  at {:.0} mV: {:.2} pJ/s ({:.0}% busy)",
        cmp.dvs.vdd.millivolts(),
        cmp.dvs.energy_per_second.value() * 1e12,
        cmp.dvs.busy_fraction * 100.0
    );
    println!(
        "  race at {:.0} mV: {:.2} pJ/s ({:.1}% busy) → {:.1}× more energy",
        cmp.race.vdd.millivolts(),
        cmp.race.energy_per_second.value() * 1e12,
        cmp.race.busy_fraction * 100.0,
        cmp.race_to_dvs_ratio()
    );

    println!(
        "\nConclusion: AVS and ABB both land the iso-delay point for corner-scale\n\
         shifts; AVS has the larger actuation range, ABB spares the converter a\n\
         retarget. Sizing buys immunity at a permanent energy premium, and\n\
         race-to-idle loses by the V² gap — the paper's premise, reproduced."
    );
    Ok(())
}
