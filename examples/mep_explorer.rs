//! Explore the minimum-energy-point landscape: energy-vs-voltage curves
//! across corners, temperatures and switching activities, with the MEP
//! marked on each — an interactive superset of the paper's Figs. 1-2.
//!
//! ```bash
//! cargo run --example mep_explorer [corner|temp|activity]
//! ```

use subvt::prelude::*;

fn sweep_and_report(
    tech: &Technology,
    profile: &CircuitProfile,
    env: Environment,
    label: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let mep = find_mep(tech, profile, env, Volts(0.12), Volts(0.9))?;
    let curve = energy_sweep(tech, profile, env, Volts(0.12), Volts(0.6), 24);
    print!("{label:>14}: ");
    for point in &curve {
        // Tiny ASCII sparkline: one char per point, log-scaled.
        let e = point.total().femtos();
        let c = match e {
            e if e < mep.energy.femtos() * 1.05 => '_',
            e if e < mep.energy.femtos() * 1.5 => '.',
            e if e < mep.energy.femtos() * 3.0 => ':',
            e if e < mep.energy.femtos() * 8.0 => '|',
            _ => '^',
        };
        print!("{c}");
    }
    println!(
        "  MEP {:.0} mV / {:.2} fJ",
        mep.vopt.millivolts(),
        mep.energy.femtos()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::st_130nm();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());

    println!("Energy landscape, 120 mV → 600 mV left to right ('_' marks the MEP basin)\n");

    if which == "corner" || which == "all" {
        println!("By process corner (α = 0.1, 25 °C) — the paper's Fig. 1:");
        let ring = CircuitProfile::ring_oscillator();
        for corner in ProcessCorner::ALL {
            sweep_and_report(&tech, &ring, Environment::at_corner(corner), corner.name())?;
        }
        println!();
    }

    if which == "temp" || which == "all" {
        println!("By temperature (TT corner) — the paper's Fig. 2:");
        let ring = CircuitProfile::ring_oscillator();
        for celsius in [0.0, 25.0, 55.0, 85.0, 115.0] {
            sweep_and_report(
                &tech,
                &ring,
                Environment::at_celsius(celsius),
                &format!("{celsius:.0} °C"),
            )?;
        }
        println!();
    }

    if which == "activity" || which == "all" {
        println!(
            "By switching factor (TT, 25 °C) — why different computations need different Vdd:"
        );
        for activity in [0.02, 0.05, 0.1, 0.3, 0.6] {
            let profile = CircuitProfile::ring_oscillator().with_activity(activity);
            sweep_and_report(
                &tech,
                &profile,
                Environment::nominal(),
                &format!("α = {activity}"),
            )?;
        }
        println!();
        println!(
            "Busier circuits (higher α) push the MEP down: dynamic energy grows \
             relative to leakage — this is why the rate controller maps each \
             workload band to its own voltage word."
        );
    }
    Ok(())
}
