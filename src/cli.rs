//! Argument parsing and command dispatch for the `subvt` CLI.
//!
//! Hand-rolled (the workspace has a zero-external-dependency policy;
//! see DESIGN.md) but fully testable: [`Command::parse`] is pure.

use std::fmt;
use std::str::FromStr;

use subvt_core::controller::SupplyKind;
use subvt_core::experiment::{savings_experiment, Scenario};
use subvt_core::matrix::{CellSummary, MatrixCell, StudyMatrix};
use subvt_core::study::{
    FaultPlan, StudyArgs, StudyConfig, StudyError, SupplyBackendKind, DEFAULT_BATCH,
};
use subvt_core::transient::{fig6_schedule, run_transient};
use subvt_core::{PhaseProfile, SupplySim};
use subvt_dcdc::converter::ConverterParams;
use subvt_dcdc::filter::NoLoad;
use subvt_dcdc::solver::SolverMode;
use subvt_device::corner::ProcessCorner;
use subvt_device::delay::{GateMismatch, GateTiming};
use subvt_device::energy::CircuitProfile;
use subvt_device::mep::{energy_sweep, find_mep};
use subvt_device::mosfet::Environment;
use subvt_device::tabulate::EvalMode;
use subvt_device::technology::{GateKind, Technology};
use subvt_device::units::Volts;
use subvt_exec::{CancelToken, ExecConfig, Progress};
use subvt_scenario::{RunOptions, Scenario as StudyScenario};
use subvt_tdc::sensor::{word_voltage, SensorConfig, VariationSensor};
use subvt_tdc::table1::{reproduce_table1, PAPER_SIGNATURES};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Locate the minimum-energy point.
    Mep(Operating),
    /// Print a gate delay.
    Delay {
        /// Operating point.
        op: Operating,
        /// Supply voltage.
        vdd: Volts,
        /// Gate flavour.
        gate: GateKind,
    },
    /// Run the TDC sensor once.
    Sense {
        /// Operating point of the actual die.
        op: Operating,
        /// Calibrated band (voltage word).
        word: u8,
        /// Actual supply in millivolts (defaults to the word voltage).
        vdd_mv: Option<f64>,
    },
    /// CSV energy sweep.
    Sweep {
        /// Operating point.
        op: Operating,
        /// Sweep start (mV).
        from_mv: f64,
        /// Sweep end (mV).
        to_mv: f64,
        /// Number of steps.
        steps: usize,
    },
    /// Monte-Carlo parametric yield (summary-only streaming path),
    /// optionally under fault injection (`--faults`/`--mitigation`).
    Yield {
        /// Operating point of the die population.
        op: Operating,
        /// The shared study flags (`--dies`, `--jobs`, `--seed`,
        /// `--eval`, `--supply`, `--solver`, `--faults`,
        /// `--mitigation`).
        study: StudyArgs,
    },
    /// The 18-cell supply × corner × fault shoot-out grid, scored on
    /// one shared die stream by the fused [`StudyMatrix`] engine.
    Matrix {
        /// Operating point (technology node and temperature) shared by
        /// every cell; the corners come from the grid itself.
        op: Operating,
        /// The shared study flags (`--dies`, `--jobs`, `--seed`,
        /// `--batch`, `--checkpoint`, `--solver`, `--faults`, …).
        study: StudyArgs,
        /// Score each cell with its own standalone study instead of
        /// the fused engine — the slow reference mode; the report is
        /// byte-identical by the matrix engine's contract.
        per_cell: bool,
    },
    /// Run a scenario corpus (a `.toml` file or a directory of them)
    /// on the fused matrix engine and render the shared report model.
    Suite {
        /// Scenario file or directory.
        path: String,
        /// Output directory: write `<stem>.txt` and `<stem>.json` per
        /// scenario instead of printing the text reports.
        out: Option<String>,
        /// Checkpoint directory: arm `<stem>.svcp` per scenario.
        checkpoint_dir: Option<String>,
        /// Worker-thread override (runtime-only; results and report
        /// bytes are identical at any value).
        jobs: Option<usize>,
    },
    /// Fig. 6 transient summary.
    Fig6 {
        /// Converter solver for the transient.
        solver: SolverMode,
    },
    /// Table I signatures.
    Table1,
    /// The paper's savings experiment.
    Savings {
        /// Supply backend the controller runs from.
        supply: SupplyBackendKind,
        /// Converter solver for buck-supply runs.
        solver: SolverMode,
    },
    /// Print usage.
    Help,
}

/// Technology choice plus environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Operating {
    /// Which preset technology.
    pub node: Node,
    /// Process corner.
    pub corner: ProcessCorner,
    /// Temperature in °C.
    pub celsius: f64,
    /// Switching factor for energy queries.
    pub activity: f64,
}

impl Default for Operating {
    fn default() -> Operating {
        Operating {
            node: Node::N130,
            corner: ProcessCorner::Tt,
            celsius: 25.0,
            activity: 0.1,
        }
    }
}

impl Operating {
    /// Builds the technology.
    pub fn technology(&self) -> Technology {
        match self.node {
            Node::N130 => Technology::st_130nm(),
            Node::N65 => Technology::generic_65nm(),
        }
    }

    /// Builds the environment.
    pub fn environment(&self) -> Environment {
        Environment::at_corner(self.corner).with_celsius(self.celsius)
    }
}

/// Technology node selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The paper's 0.13 µm process.
    N130,
    /// The representative 65 nm process.
    N65,
}

/// A CLI parse failure, with a message for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(String);

impl fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseCliError {}

fn err(msg: impl Into<String>) -> ParseCliError {
    ParseCliError(msg.into())
}

fn parse_value<T: FromStr>(flag: &str, value: Option<&String>) -> Result<T, ParseCliError> {
    let raw = value.ok_or_else(|| err(format!("{flag} needs a value")))?;
    raw.parse()
        .map_err(|_| err(format!("invalid value `{raw}` for {flag}")))
}

/// Parses `suite <path> [--out DIR] [--checkpoint-dir DIR] [--jobs N]`.
///
/// The scenario files own every study knob, so the only flags here are
/// runtime ones — where the work runs, where the outputs and
/// checkpoints land. None of them can change report bytes.
fn parse_suite(rest: &[String]) -> Result<Command, ParseCliError> {
    let mut path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        match flag {
            "--out" => {
                out = Some(parse_value(flag, rest.get(i + 1))?);
                i += 2;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(parse_value(flag, rest.get(i + 1))?);
                i += 2;
            }
            "--jobs" => {
                let raw: String = parse_value(flag, rest.get(i + 1))?;
                jobs = Some(raw.parse().ok().filter(|&n: &usize| n > 0).ok_or_else(|| {
                    err(format!(
                        "invalid value `{raw}` for --jobs (expected a positive integer)"
                    ))
                })?);
                i += 2;
            }
            _ if !flag.starts_with('-') && path.is_none() => {
                path = Some(flag.to_owned());
                i += 1;
            }
            other => return Err(err(format!("unknown flag `{other}` for suite"))),
        }
    }
    let path = path.ok_or_else(|| err("suite needs a scenario file or directory"))?;
    Ok(Command::Suite {
        path,
        out,
        checkpoint_dir,
        jobs,
    })
}

/// The scenario corpus behind a `suite` path argument: the file
/// itself, or every `.toml` in the directory in name order.
fn scenario_files(path: &str) -> Result<Vec<std::path::PathBuf>, String> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        let entries = std::fs::read_dir(p).map_err(|e| format!("{path}: {e}"))?;
        let mut files: Vec<std::path::PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|f| f.extension().is_some_and(|ext| ext == "toml"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{path}: no `.toml` scenarios found"));
        }
        Ok(files)
    } else if p.is_file() {
        Ok(vec![p.to_path_buf()])
    } else {
        Err(format!("{path}: no such file or directory"))
    }
}

impl Command {
    /// Parses an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCliError`] describing the first problem found.
    pub fn parse(args: &[String]) -> Result<Command, ParseCliError> {
        let mut it = args.iter();
        let sub = match it.next() {
            Some(s) => s.as_str(),
            None => return Ok(Command::Help),
        };

        // Collect flags into (name, value) pairs.
        let rest: Vec<String> = it.cloned().collect();

        // `suite` takes a positional scenario path plus its own output
        // flags; it never mixes with the study flags (the scenario
        // files are the source of truth for every study knob).
        if sub == "suite" {
            return parse_suite(&rest);
        }
        let mut op = Operating::default();
        let mut vdd_mv: Option<f64> = None;
        let mut word: Option<u8> = None;
        let mut gate = GateKind::Inverter;
        let mut from_mv = 120.0;
        let mut to_mv = 600.0;
        let mut steps = 24usize;
        let mut per_cell = false;
        let mut study = StudyArgs::new();

        let mut i = 0;
        while i < rest.len() {
            let flag = rest[i].as_str();
            let value = rest.get(i + 1);
            match flag {
                "--tech" => {
                    let v: String = parse_value(flag, value)?;
                    op.node = match v.as_str() {
                        "130" | "130nm" => Node::N130,
                        "65" | "65nm" => Node::N65,
                        other => return Err(err(format!("unknown tech `{other}` (130|65)"))),
                    };
                    i += 2;
                }
                "--corner" => {
                    let v: String = parse_value(flag, value)?;
                    op.corner = v.parse().map_err(|e| err(format!("{e}")))?;
                    i += 2;
                }
                "--temp" => {
                    op.celsius = parse_value(flag, value)?;
                    i += 2;
                }
                "--activity" => {
                    op.activity = parse_value(flag, value)?;
                    if !(0.0..=1.0).contains(&op.activity) || op.activity == 0.0 {
                        return Err(err("--activity must be in (0, 1]"));
                    }
                    i += 2;
                }
                "--vdd-mv" => {
                    vdd_mv = Some(parse_value(flag, value)?);
                    i += 2;
                }
                "--word" => {
                    let w: u8 = parse_value(flag, value)?;
                    if w > 63 {
                        return Err(err("--word must be 0..=63"));
                    }
                    word = Some(w);
                    i += 2;
                }
                "--gate" => {
                    let v: String = parse_value(flag, value)?;
                    gate = match v.as_str() {
                        "inv" | "inverter" => GateKind::Inverter,
                        "nand" | "nand2" => GateKind::Nand2,
                        "nor" | "nor2" => GateKind::Nor2,
                        other => return Err(err(format!("unknown gate `{other}`"))),
                    };
                    i += 2;
                }
                "--from-mv" => {
                    from_mv = parse_value(flag, value)?;
                    i += 2;
                }
                "--to-mv" => {
                    to_mv = parse_value(flag, value)?;
                    i += 2;
                }
                "--steps" => {
                    steps = parse_value(flag, value)?;
                    i += 2;
                }
                "--per-cell" => {
                    per_cell = true;
                    i += 1;
                }
                // Everything else is a shared study flag (`--dies`,
                // `--jobs`, `--seed`, `--eval`, `--supply`,
                // `--solver`, `--faults`, `--mitigation`) — one
                // parser, shared with the exp-* harness binaries.
                other => match study.accept(&rest, i).map_err(err)? {
                    Some(consumed) => i += consumed,
                    None => return Err(err(format!("unknown flag `{other}`"))),
                },
            }
        }

        match sub {
            "mep" => Ok(Command::Mep(op)),
            "delay" => {
                let mv = vdd_mv.ok_or_else(|| err("delay needs --vdd-mv"))?;
                Ok(Command::Delay {
                    op,
                    vdd: Volts::from_millivolts(mv),
                    gate,
                })
            }
            "sense" => {
                let word = word.ok_or_else(|| err("sense needs --word"))?;
                Ok(Command::Sense { op, word, vdd_mv })
            }
            "sweep" => {
                if from_mv >= to_mv {
                    return Err(err("--from-mv must be below --to-mv"));
                }
                if steps == 0 {
                    return Err(err("--steps must be positive"));
                }
                Ok(Command::Sweep {
                    op,
                    from_mv,
                    to_mv,
                    steps,
                })
            }
            "yield" => Ok(Command::Yield { op, study }),
            "matrix" => Ok(Command::Matrix {
                op,
                study,
                per_cell,
            }),
            "fig6" => Ok(Command::Fig6 {
                solver: study.solver,
            }),
            "table1" => Ok(Command::Table1),
            "savings" => Ok(Command::Savings {
                supply: study.supply,
                solver: study.solver,
            }),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(err(format!("unknown command `{other}` (try `help`)"))),
        }
    }

    /// Executes the command, writing human output to the returned
    /// string.
    ///
    /// # Errors
    ///
    /// Returns a message when the underlying computation fails (e.g. a
    /// supply below the technology floor).
    pub fn run(&self) -> Result<String, String> {
        match self {
            Command::Help => Ok(USAGE.to_owned()),
            Command::Mep(op) => {
                let tech = op.technology();
                let profile = CircuitProfile::ring_oscillator().with_activity(op.activity);
                let mep = find_mep(
                    &tech,
                    &profile,
                    op.environment(),
                    tech.min_vdd + Volts(0.02),
                    Volts(0.9),
                )
                .map_err(|e| e.to_string())?;
                Ok(format!(
                    "MEP on {} at {} / {:.0} °C / α={}: {:.1} mV, {:.3} fJ per op",
                    tech.name,
                    op.corner,
                    op.celsius,
                    op.activity,
                    mep.vopt.millivolts(),
                    mep.energy.femtos()
                ))
            }
            Command::Delay { op, vdd, gate } => {
                let tech = op.technology();
                let d = GateTiming::new(&tech)
                    .gate_delay(*gate, *vdd, op.environment())
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "{gate:?} delay on {} at {:.1} mV, {} / {:.0} °C: {:.3} ns",
                    tech.name,
                    vdd.millivolts(),
                    op.corner,
                    op.celsius,
                    d.nanos()
                ))
            }
            Command::Sense { op, word, vdd_mv } => {
                let tech = op.technology();
                let sensor =
                    VariationSensor::new(&tech, Environment::nominal(), SensorConfig::default());
                let vdd = vdd_mv
                    .map(Volts::from_millivolts)
                    .unwrap_or_else(|| word_voltage(*word));
                let dev = sensor
                    .sense(&tech, *word, vdd, op.environment(), GateMismatch::NOMINAL)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "sensor at word {word} ({:.2} mV applied), die {} / {:.0} °C: deviation {dev:+} LSB",
                    vdd.millivolts(),
                    op.corner,
                    op.celsius
                ))
            }
            Command::Sweep {
                op,
                from_mv,
                to_mv,
                steps,
            } => {
                let tech = op.technology();
                let profile = CircuitProfile::ring_oscillator().with_activity(op.activity);
                let series = energy_sweep(
                    &tech,
                    &profile,
                    op.environment(),
                    Volts::from_millivolts(*from_mv),
                    Volts::from_millivolts(*to_mv),
                    *steps,
                );
                let mut out = String::from("vdd_mv,total_fj,dynamic_fj,leakage_fj\n");
                for e in series {
                    out.push_str(&format!(
                        "{:.2},{:.5},{:.5},{:.5}\n",
                        e.vdd.millivolts(),
                        e.total().femtos(),
                        e.dynamic.femtos(),
                        e.leakage.femtos()
                    ));
                }
                Ok(out)
            }
            Command::Yield { op, study } => {
                let cfg = study.exec();
                // The study flags carry everything but the operating
                // point; the builder gets tech/env from `op` so the
                // eval surfaces are built for the right node.
                let mut builder = StudyConfig::new(study.dies, study.seed)
                    .tech(op.technology())
                    .env(op.environment())
                    .supply_backend(study.supply)
                    .solver(study.solver)
                    .exec(cfg);
                if study.eval != EvalMode::Analytic {
                    builder = builder.eval_mode(study.eval);
                }
                if let Some(batch) = study.batch {
                    builder = builder.batch(batch);
                }
                if let Some(path) = &study.checkpoint {
                    builder = builder.checkpoint(path);
                }
                // `--cancel-after-dies N` arms a token that fires once
                // the progress counter crosses N — the in-flight chunk
                // still commits, so a `--checkpoint` file holds every
                // die scored so far and a later run resumes it.
                let token = CancelToken::new();
                let watch_token = token.clone();
                let limit = study.cancel_after_dies;
                let watch = move |p: Progress| {
                    if limit.is_some_and(|n| p.done as u64 >= n) {
                        watch_token.cancel();
                    }
                };
                if limit.is_some() {
                    builder = builder.cancel(&token).progress(&watch);
                }
                let cancelled = |what: &str| {
                    let kept = match &study.checkpoint {
                        Some(path) => format!("progress saved to {path}"),
                        None => "no --checkpoint, progress discarded".to_owned(),
                    };
                    Ok(format!(
                        "{what} study stopped by --cancel-after-dies; {kept}\n"
                    ))
                };
                let provenance = format!(
                    "(spec 110 kHz @ ≤2.9 fJ, word 11, {} model, {} supply, {} jobs, batch {})",
                    study.eval.label(),
                    supply_label(study.supply, study.solver),
                    cfg.jobs(),
                    study.batch.unwrap_or(DEFAULT_BATCH),
                );
                // `--profile-phases`: delta the process-global phase
                // timers across the run and append the attribution.
                // `--profile-phases-json` writes the same delta as JSON.
                let with_profile = profile_sink(study);
                match study.fault_plan() {
                    None => {
                        let summary = match builder.try_run_summary() {
                            Ok(summary) => summary,
                            Err(StudyError::Cancelled) => return cancelled("yield"),
                            Err(e) => return Err(e.to_string()),
                        };
                        with_profile(format!(
                            "yield over {} dies {provenance}:\n\
                             fixed {:.1}%  adaptive {:.1}%  dithered {:.1}%  mean adaptive E {}\n",
                            summary.dies,
                            summary.fixed_yield() * 100.0,
                            summary.adaptive_yield() * 100.0,
                            summary.dithered_yield() * 100.0,
                            summary
                                .mean_adaptive_energy()
                                .map_or("-".into(), |e| format!("{:.3} fJ", e.femtos()))
                        ))
                    }
                    Some(plan) => {
                        let s = match builder.faults(plan).try_run_faults() {
                            Ok(s) => s,
                            Err(StudyError::Cancelled) => return cancelled("fault"),
                            Err(e) => return Err(e.to_string()),
                        };
                        with_profile(format!(
                            "yield over {} dies {provenance}\n\
                             under faults (rate {} per domain-cycle, mitigation {}):\n\
                             fixed {:.1}%  adaptive {:.1}%  dithered {:.1}%  mean adaptive E {}\n\
                             tracking error {:.2} LSB, recovery {:.3} fJ/die, \
                             {} watchdog trips, {} faults injected\n",
                            s.dies(),
                            plan.tdc_rate,
                            if plan.mitigation { "on" } else { "off" },
                            s.fixed_yield() * 100.0,
                            s.adaptive_yield() * 100.0,
                            s.base.dithered_yield() * 100.0,
                            s.base
                                .mean_adaptive_energy()
                                .map_or("-".into(), |e| format!("{:.3} fJ", e.femtos())),
                            s.mean_tracking_error(),
                            s.mean_recovery_energy().femtos(),
                            s.watchdog_trips,
                            s.faults_injected,
                        ))
                    }
                }
            }
            Command::Matrix {
                op,
                study,
                per_cell,
            } => {
                let cfg = study.exec();
                let rate = study.faults.unwrap_or(0.02);
                let plan = FaultPlan::uniform(rate).with_mitigation(study.mitigation);
                let mut cells = Vec::new();
                for supply in [
                    SupplyBackendKind::Buck,
                    SupplyBackendKind::Dldo,
                    SupplyBackendKind::Dlr,
                ] {
                    for corner in [ProcessCorner::Tt, ProcessCorner::Ss, ProcessCorner::Ff] {
                        for faults in [None, Some(plan)] {
                            cells.push(MatrixCell {
                                supply,
                                env: Environment::at_corner(corner).with_celsius(op.celsius),
                                faults,
                            });
                        }
                    }
                }
                let build_base = || {
                    let mut b = StudyConfig::new(study.dies, study.seed)
                        .tech(op.technology())
                        .solver(study.solver)
                        .exec(cfg);
                    if study.eval != EvalMode::Analytic {
                        b = b.eval_mode(study.eval);
                    }
                    if let Some(batch) = study.batch {
                        b = b.batch(batch);
                    }
                    b
                };
                let with_profile = profile_sink(study);
                let results: Vec<CellSummary> = if *per_cell {
                    if study.checkpoint.is_some() {
                        return Err(
                            "--checkpoint needs the fused engine; drop --per-cell".to_owned()
                        );
                    }
                    // The slow reference: one standalone study per
                    // cell. Byte-identical to the fused path by the
                    // matrix engine's contract — that is what
                    // tests/matrix_equivalence.rs pins.
                    cells
                        .iter()
                        .map(|cell| {
                            let base = build_base().supply_backend(cell.supply).env(cell.env);
                            match cell.faults {
                                None => CellSummary::Yield(base.run_summary()),
                                Some(plan) => CellSummary::Faults(base.faults(plan).run_faults()),
                            }
                        })
                        .collect()
                } else {
                    let mut base = build_base();
                    if let Some(path) = &study.checkpoint {
                        base = base.checkpoint(path);
                    }
                    let token = CancelToken::new();
                    let watch_token = token.clone();
                    let limit = study.cancel_after_dies;
                    let watch = move |p: Progress| {
                        if limit.is_some_and(|n| p.done as u64 >= n) {
                            watch_token.cancel();
                        }
                    };
                    if limit.is_some() {
                        base = base.cancel(&token).progress(&watch);
                    }
                    let matrix = cells.iter().fold(StudyMatrix::new(base), |m, c| {
                        m.cell(c.supply, c.env, c.faults)
                    });
                    match matrix.try_run() {
                        Ok(results) => results,
                        Err(StudyError::Cancelled) => {
                            let kept = match &study.checkpoint {
                                Some(path) => format!("progress saved to {path}"),
                                None => "no --checkpoint, progress discarded".to_owned(),
                            };
                            return Ok(format!(
                                "matrix study stopped by --cancel-after-dies; {kept}\n"
                            ));
                        }
                        Err(e) => return Err(e.to_string()),
                    }
                };
                let mut out = format!(
                    "study matrix over {} dies × {} cells (spec 110 kHz @ ≤2.9 fJ, {} model, \
                     {} solver, {} jobs, batch {}, fault rate {rate}, mitigation {}):\n",
                    study.dies,
                    cells.len(),
                    study.eval.label(),
                    solver_label(study.solver),
                    cfg.jobs(),
                    study.batch.unwrap_or(DEFAULT_BATCH),
                    if study.mitigation { "on" } else { "off" },
                );
                for (cell, result) in cells.iter().zip(&results) {
                    out.push_str(&matrix_line(cell, result));
                }
                with_profile(out)
            }
            Command::Suite {
                path,
                out,
                checkpoint_dir,
                jobs,
            } => {
                let files = scenario_files(path)?;
                let mut summaries = Vec::new();
                let mut combined = String::new();
                for (idx, file) in files.iter().enumerate() {
                    let name = file.display();
                    let text = std::fs::read_to_string(file).map_err(|e| format!("{name}: {e}"))?;
                    let scenario =
                        StudyScenario::from_toml(&text).map_err(|e| format!("{name}: {e}"))?;
                    let stem = file
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("scenario")
                        .to_owned();
                    let checkpoint = match checkpoint_dir {
                        Some(dir) => {
                            std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
                            Some(std::path::Path::new(dir).join(format!("{stem}.svcp")))
                        }
                        None => None,
                    };
                    let opts = RunOptions {
                        exec: jobs.map(ExecConfig::with_jobs),
                        checkpoint,
                    };
                    let report = scenario
                        .try_run(&opts)
                        .map_err(|e| format!("{name}: {e}"))?;
                    match out {
                        Some(dir) => {
                            std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
                            let txt = std::path::Path::new(dir).join(format!("{stem}.txt"));
                            let json = std::path::Path::new(dir).join(format!("{stem}.json"));
                            std::fs::write(&txt, report.to_text())
                                .map_err(|e| format!("{}: {e}", txt.display()))?;
                            std::fs::write(&json, report.to_json())
                                .map_err(|e| format!("{}: {e}", json.display()))?;
                            summaries.push(format!(
                                "{stem}: {} cells, fingerprint {:016x}, wrote {} and {}",
                                report.cells.len(),
                                scenario.fingerprint(),
                                txt.display(),
                                json.display(),
                            ));
                        }
                        None => {
                            if idx > 0 {
                                combined.push('\n');
                            }
                            combined.push_str(&report.to_text());
                        }
                    }
                }
                Ok(if out.is_some() {
                    summaries.join("\n") + "\n"
                } else {
                    combined
                })
            }
            Command::Fig6 { solver } => {
                let result = run_transient(
                    ConverterParams::default().with_solver(*solver),
                    Box::new(NoLoad),
                    &fig6_schedule(),
                );
                let mut out = String::new();
                for seg in &result.segments {
                    out.push_str(&format!(
                        "word {:2} → settled {:.2} mV (target {:.2}, ripple {:.2} mV)\n",
                        seg.word,
                        seg.settled.millivolts(),
                        seg.target.millivolts(),
                        seg.ripple.millivolts()
                    ));
                }
                out.push_str(&format!("solver: {}\n", solver_label(*solver)));
                Ok(out)
            }
            Command::Table1 => {
                let rows = reproduce_table1(&Technology::st_130nm(), Environment::nominal())
                    .map_err(|e| e.to_string())?;
                let mut out = String::new();
                for (row, &(label, paper)) in rows.iter().zip(PAPER_SIGNATURES.iter()) {
                    out.push_str(&format!("{label}: {}   (paper {paper})\n", row.hex()));
                }
                Ok(out)
            }
            Command::Savings { supply, solver } => {
                // The transient controller only models the buck stage
                // electrically; the dldo/dlr backends run the worked
                // example on the ideal rail and report their own
                // closed-form regulation figures alongside it.
                let scenario_supply = match supply {
                    SupplyBackendKind::Buck => SupplyKind::Switched,
                    _ => SupplyKind::Ideal,
                };
                let mut scenario = Scenario::paper_worked_example().with_supply(scenario_supply);
                scenario.config.converter = scenario.config.converter.with_solver(*solver);
                let report = savings_experiment(&scenario).map_err(|e| e.to_string())?;
                let mut out = format!(
                    "worked example (TT design on SS die): LUT {:+} LSB, \
                     {:.1}% vs fixed supply, {:.1}% vs uncompensated",
                    report.compensated.compensation,
                    report.savings_vs_fixed() * 100.0,
                    report.savings_vs_uncompensated() * 100.0
                );
                match supply {
                    SupplyBackendKind::Buck => {
                        out.push_str(&format!(
                            "\nbuck supply ({} solver): converter loss {:.3} fJ",
                            solver_label(*solver),
                            report.compensated.account.converter().femtos()
                        ));
                    }
                    SupplyBackendKind::Dldo | SupplyBackendKind::Dlr => {
                        if let SupplySim::Regulated(model) = supply.build_sim(*solver) {
                            out.push_str(&format!(
                                "\n{} backend at word 11: ripple {:.3} mV pp, \
                                 settle {} cycle(s), regulation {:.1} fJ/cycle",
                                model.tag(),
                                model.point(11).ripple().millivolts(),
                                model.response_cycles(),
                                model.regulation_energy_per_cycle().femtos()
                            ));
                        }
                    }
                    SupplyBackendKind::Ideal => {}
                }
                Ok(out)
            }
        }
    }
}

/// Builds the report post-processor behind `--profile-phases` and
/// `--profile-phases-json`: both delta the process-global phase timers
/// across the run — one appends the human-readable block to the
/// report, the other writes the JSON form to a file. Pure observation;
/// the report numbers are unchanged.
fn profile_sink(study: &StudyArgs) -> impl Fn(String) -> Result<String, String> + '_ {
    let before =
        (study.profile_phases || study.profile_phases_json.is_some()).then(PhaseProfile::snapshot);
    move |report: String| {
        let Some(before) = &before else {
            return Ok(report);
        };
        let delta = PhaseProfile::snapshot().since(before);
        if let Some(path) = &study.profile_phases_json {
            std::fs::write(path, delta.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        }
        Ok(if study.profile_phases {
            format!("{report}{delta}\n")
        } else {
            report
        })
    }
}

/// One row of the matrix report — a pure function of the cell and its
/// summary, so the fused and `--per-cell` paths render identically.
fn matrix_line(cell: &MatrixCell, result: &CellSummary) -> String {
    let head = format!(
        "{:<5} {}  {:<7}",
        cell.supply.label(),
        cell.env.corner,
        if cell.faults.is_some() {
            "faulted"
        } else {
            "clean"
        },
    );
    match result {
        CellSummary::Yield(s) => format!(
            "{head}  fixed {:5.1}%  adaptive {:5.1}%  dithered {:5.1}%  mean E {}\n",
            s.fixed_yield() * 100.0,
            s.adaptive_yield() * 100.0,
            s.dithered_yield() * 100.0,
            s.mean_adaptive_energy()
                .map_or("-".into(), |e| format!("{:.3} fJ", e.femtos())),
        ),
        CellSummary::Faults(s) => format!(
            "{head}  fixed {:5.1}%  adaptive {:5.1}%  dithered {:5.1}%  mean E {}  \
             trk {:.2} LSB  {} trips  {} faults\n",
            s.fixed_yield() * 100.0,
            s.adaptive_yield() * 100.0,
            s.base.dithered_yield() * 100.0,
            s.base
                .mean_adaptive_energy()
                .map_or("-".into(), |e| format!("{:.3} fJ", e.femtos())),
            s.mean_tracking_error(),
            s.watchdog_trips,
            s.faults_injected,
        ),
    }
}

/// Human label for a solver mode (used in provenance lines).
fn solver_label(solver: SolverMode) -> &'static str {
    match solver {
        SolverMode::ClosedForm => "closed-form",
        SolverMode::Rk4 => "rk4",
    }
}

/// Human label for a supply choice (used in provenance lines).
fn supply_label(supply: SupplyBackendKind, solver: SolverMode) -> String {
    match supply {
        SupplyBackendKind::Buck => format!("buck[{}]", solver_label(solver)),
        other => other.label().to_owned(),
    }
}

/// CLI usage text.
pub const USAGE: &str = "subvt — variation resilient adaptive controller toolkit

USAGE:
    subvt <command> [flags]

COMMANDS:
    mep       locate the minimum-energy point
    delay     print a gate delay         (needs --vdd-mv)
    sense     run the TDC sensor once    (needs --word)
    sweep     CSV energy sweep
    yield     Monte-Carlo parametric yield (streaming, parallel)
    matrix    the 18-cell supply × corner × fault shoot-out, scored on
              one shared die stream by the fused study-matrix engine
    suite     run a scenario corpus — a `.toml` study file, or every
              `.toml` in a directory — on the fused engine and render
              the shared report (text, and JSON with --out)
    fig6      converter transient summary
    table1    quantizer signatures vs the paper
    savings   the paper's worked example
    help      this text

FLAGS:
    --tech 130|65        technology preset       (default 130)
    --corner SS|TT|FF|FS|SF                      (default TT)
    --temp <celsius>                             (default 25)
    --activity <0..1>    switching factor        (default 0.1)
    --vdd-mv <mv>        supply for delay/sense
    --word <0..63>       voltage word for sense
    --gate inv|nand|nor  gate for delay          (default inv)
    --from-mv/--to-mv/--steps   sweep range      (default 120..600, 24)
    --dies <n>           yield population size   (default 500)
    --jobs <n>           worker threads          (default: SUBVT_JOBS
                         env var, else all cores; any value gives
                         bit-identical results)
    --seed <n>           yield root seed         (default 1)
    --batch <n>          dies scored per SoA sub-batch on the yield
                         summary path (default 32; any value gives
                         bit-identical results)
    --checkpoint <file>  chunk-granular checkpoint for yield: resumes
                         an interrupted study bit-identically, even at
                         a different --jobs/--batch; a finished file
                         replays its result without rescoring, and a
                         mismatched or damaged file is an error, never
                         silently restarted
    --cancel-after-dies <n>     stop the yield study gracefully once
                         ~n dies are scored (the in-flight chunk still
                         commits); pair with --checkpoint to resume
    --profile-phases     append the batched hot path's per-phase wall
                         time (die draw, fixed lane, word settle,
                         adaptive lanes, dither settle, plus the
                         matrix engine's shared draw and fault walk)
                         to the report — pure observation, results
                         unchanged
    --profile-phases-json <file>    write the same per-phase profile
                         as JSON to <file> after a yield/matrix run
    --per-cell           matrix only: score each cell with its own
                         standalone study instead of the fused engine
                         (slow reference mode; identical report)
    --eval analytic|tabulated   device model for yield: the exact
                         analytic model (default) or precomputed
                         monotone-cubic surfaces (≤1% accuracy
                         budget, much faster Monte-Carlo)
    --supply ideal|buck|dldo|dlr   supply backend for yield/savings:
                         an ideal rail (default), the buck converter,
                         a time-interleaved digital LDO, or a
                         discrete-time linear regulator — regulated
                         backends score rate at the ripple trough and
                         energy at the cycle mean
    --solver closed-form|rk4    converter solver for fig6 and
                         buck-supply runs (default closed-form;
                         rk4 is the reference integrator)
    --faults <0..1>      per-cycle fault rate for yield: inject
                         deterministic TDC/converter/controller
                         faults at this probability per domain-cycle
                         (default: no injection; for matrix, the rate
                         of the faulted half of the grid, default 0.02)
    --mitigation on|off  graceful-degradation machinery (triple-sample
                         TDC vote, signature debounce, LUT scrub, rail
                         watchdog) for faulted yield runs (default on)

SUITE FLAGS (suite <path> only — scenario files own the study knobs):
    --out <dir>          write <stem>.txt and <stem>.json per scenario
                         instead of printing the text reports
    --checkpoint-dir <dir>      arm a <stem>.svcp checkpoint per
                         scenario (resume/replay semantics as
                         --checkpoint)
    --jobs <n>           worker threads (runtime-only; report bytes
                         identical at any value)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, ParseCliError> {
        let args: Vec<String> = words.iter().map(|s| (*s).to_owned()).collect();
        Command::parse(&args)
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert!(Command::Help.run().unwrap().contains("USAGE"));
    }

    #[test]
    fn mep_with_flags() {
        let c = parse(&["mep", "--corner", "SS", "--temp", "85", "--activity", "0.2"]).unwrap();
        match c {
            Command::Mep(op) => {
                assert_eq!(op.corner, ProcessCorner::Ss);
                assert_eq!(op.celsius, 85.0);
                assert_eq!(op.activity, 0.2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mep_runs_and_reports() {
        let out = parse(&["mep"]).unwrap().run().unwrap();
        assert!(out.contains("200"), "{out}");
        assert!(out.contains("2.65"), "{out}");
    }

    #[test]
    fn mep_on_the_65nm_node() {
        let out = parse(&["mep", "--tech", "65"]).unwrap().run().unwrap();
        assert!(out.contains("generic-65nm"), "{out}");
    }

    #[test]
    fn delay_requires_vdd() {
        assert!(parse(&["delay"]).is_err());
        let out = parse(&["delay", "--vdd-mv", "600"]).unwrap().run().unwrap();
        assert!(out.contains("0.442"), "{out}");
    }

    #[test]
    fn sense_detects_corner() {
        let out = parse(&["sense", "--word", "19", "--corner", "SS"])
            .unwrap()
            .run()
            .unwrap();
        assert!(out.contains("deviation -"), "{out}");
    }

    #[test]
    fn sweep_emits_csv() {
        let out = parse(&["sweep", "--steps", "4"]).unwrap().run().unwrap();
        assert!(out.starts_with("vdd_mv,total_fj"));
        assert_eq!(out.lines().count(), 6);
    }

    #[test]
    fn sweep_validates_range() {
        assert!(parse(&["sweep", "--from-mv", "700", "--to-mv", "600"]).is_err());
        assert!(parse(&["sweep", "--steps", "0"]).is_err());
    }

    #[test]
    fn bad_inputs_are_rejected_with_messages() {
        let e = parse(&["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        let e = parse(&["mep", "--corner", "XX"]).unwrap_err();
        assert!(e.to_string().contains("XX"));
        let e = parse(&["mep", "--tech", "45"]).unwrap_err();
        assert!(e.to_string().contains("unknown tech"));
        let e = parse(&["sense", "--word", "99"]).unwrap_err();
        assert!(e.to_string().contains("0..=63"));
        let e = parse(&["mep", "--temp"]).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
        let e = parse(&["mep", "--bogus", "1"]).unwrap_err();
        assert!(e.to_string().contains("unknown flag"));
    }

    #[test]
    fn yield_parses_flags_and_runs() {
        let c = parse(&["yield", "--dies", "64", "--jobs", "2", "--seed", "9"]).unwrap();
        assert_eq!(
            c,
            Command::Yield {
                op: Operating::default(),
                study: StudyArgs {
                    dies: 64,
                    jobs: Some(2),
                    seed: 9,
                    ..StudyArgs::new()
                },
            }
        );
        let out = c.run().unwrap();
        assert!(out.contains("yield over 64 dies"), "{out}");
        assert!(out.contains("2 jobs"), "{out}");

        // Thread count must not change the numbers.
        let serial = parse(&["yield", "--dies", "64", "--jobs", "1", "--seed", "9"])
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.replace("2 jobs", "1 jobs"), serial);
    }

    #[test]
    fn yield_profile_phases_appends_the_profile_block() {
        let plain = parse(&["yield", "--dies", "48", "--seed", "9"])
            .unwrap()
            .run()
            .unwrap();
        assert!(!plain.contains("phase profile"), "{plain}");

        let profiled = parse(&["yield", "--dies", "48", "--seed", "9", "--profile-phases"])
            .unwrap()
            .run()
            .unwrap();
        assert!(profiled.starts_with(&plain), "{profiled}");
        assert!(profiled.contains("phase profile"), "{profiled}");
        for phase in ["draw", "word settle", "dither settle", "total"] {
            assert!(profiled.contains(phase), "missing {phase}: {profiled}");
        }
    }

    #[test]
    fn yield_validates_flags() {
        assert!(parse(&["yield", "--dies", "0"]).is_err());
        assert!(parse(&["yield", "--jobs", "0"]).is_err());
        assert!(parse(&["yield", "--jobs"]).is_err());
        assert!(parse(&["yield", "--eval", "magic"]).is_err());
        assert!(parse(&["yield", "--eval"]).is_err());
    }

    #[test]
    fn yield_accepts_the_tabulated_model() {
        let c = parse(&[
            "yield",
            "--dies",
            "48",
            "--eval",
            "tabulated",
            "--seed",
            "9",
        ])
        .unwrap();
        match &c {
            Command::Yield { study, .. } => assert_eq!(study.eval, EvalMode::Tabulated),
            other => panic!("{other:?}"),
        }
        let out = c.run().unwrap();
        assert!(out.contains("tabulated model"), "{out}");

        // The ≤1% interpolation budget keeps every die on the same
        // settled word, but dies sitting right on the spec boundary can
        // flip pass/fail, so the yields agree within a few dies rather
        // than exactly.
        let analytic = parse(&["yield", "--dies", "48", "--seed", "9"])
            .unwrap()
            .run()
            .unwrap();
        let yields = |s: &str| -> Vec<f64> {
            s.split('%')
                .filter_map(|chunk| chunk.rsplit(' ').next()?.parse().ok())
                .collect()
        };
        let (t, a) = (yields(&out), yields(&analytic));
        assert_eq!(t.len(), 3, "{out}");
        assert_eq!(a.len(), 3, "{analytic}");
        for (t, a) in t.iter().zip(&a) {
            assert!((t - a).abs() <= 10.0, "{out}\nvs\n{analytic}");
        }
    }

    #[test]
    fn yield_accepts_fault_injection() {
        let c = parse(&[
            "yield",
            "--dies",
            "40",
            "--seed",
            "9",
            "--faults",
            "0.02",
            "--mitigation",
            "off",
            "--jobs",
            "2",
        ])
        .unwrap();
        match &c {
            Command::Yield { study, .. } => {
                assert_eq!(study.faults, Some(0.02));
                assert!(!study.mitigation);
            }
            other => panic!("{other:?}"),
        }
        let out = c.run().unwrap();
        assert!(out.contains("rate 0.02 per domain-cycle"), "{out}");
        assert!(out.contains("mitigation off"), "{out}");
        assert!(out.contains("faults injected"), "{out}");

        // Worker count must not change the faulted numbers either.
        let serial = parse(&[
            "yield",
            "--dies",
            "40",
            "--seed",
            "9",
            "--faults",
            "0.02",
            "--mitigation",
            "off",
            "--jobs",
            "1",
        ])
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(out.replace("2 jobs", "1 jobs"), serial);

        assert!(parse(&["yield", "--faults", "1.5"]).is_err());
        assert!(parse(&["yield", "--mitigation", "maybe"]).is_err());
    }

    #[test]
    fn table1_and_savings_run() {
        let t = parse(&["table1"]).unwrap().run().unwrap();
        assert!(t.contains("1.2V"), "{t}");
        let s = parse(&["savings"]).unwrap().run().unwrap();
        assert!(s.contains("+1 LSB"), "{s}");
        assert!(!s.contains("converter loss"), "{s}");
    }

    #[test]
    fn savings_on_the_buck_supply_books_converter_loss() {
        // Both the new spelling and the deprecated alias reach the
        // converter-backed scenario.
        for raw in ["buck", "switched"] {
            let s = parse(&["savings", "--supply", raw]).unwrap().run().unwrap();
            assert!(s.contains("buck supply (closed-form solver)"), "{s}");
            assert!(s.contains("converter loss"), "{s}");
        }
    }

    #[test]
    fn savings_on_the_new_backends_reports_their_figures() {
        let s = parse(&["savings", "--supply", "dldo"])
            .unwrap()
            .run()
            .unwrap();
        assert!(s.contains("dldo backend at word 11"), "{s}");
        assert!(s.contains("settle 1 cycle"), "{s}");
        let s = parse(&["savings", "--supply", "dlr"])
            .unwrap()
            .run()
            .unwrap();
        assert!(s.contains("dlr backend at word 11"), "{s}");
        assert!(s.contains("regulation 6.0 fJ/cycle"), "{s}");
    }

    #[test]
    fn yield_accepts_the_buck_supply() {
        let c = parse(&[
            "yield", "--dies", "24", "--supply", "buck", "--jobs", "2", "--seed", "9",
        ])
        .unwrap();
        match &c {
            Command::Yield { study, .. } => assert_eq!(study.supply, SupplyBackendKind::Buck),
            other => panic!("{other:?}"),
        }
        let out = c.run().unwrap();
        assert!(out.contains("buck[closed-form] supply"), "{out}");

        // Worker count must not change the buck numbers either.
        let serial = parse(&[
            "yield", "--dies", "24", "--supply", "buck", "--jobs", "1", "--seed", "9",
        ])
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(out.replace("2 jobs", "1 jobs"), serial);

        // The deprecated alias is the same study, byte for byte.
        let alias = parse(&[
            "yield", "--dies", "24", "--supply", "switched", "--jobs", "1", "--seed", "9",
        ])
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(alias, serial);
    }

    #[test]
    fn yield_runs_on_the_new_backends_deterministically() {
        for supply in ["dldo", "dlr"] {
            let run = |jobs: &str| {
                parse(&[
                    "yield", "--dies", "24", "--supply", supply, "--jobs", jobs, "--seed", "9",
                ])
                .unwrap()
                .run()
                .unwrap()
            };
            let parallel = run("2");
            assert!(parallel.contains(&format!("{supply} supply")), "{parallel}");
            assert_eq!(parallel.replace("2 jobs", "1 jobs"), run("1"), "{supply}");
        }
    }

    #[test]
    fn matrix_parses_runs_and_is_jobs_invariant() {
        let c = parse(&["matrix", "--dies", "12", "--seed", "9", "--jobs", "2"]).unwrap();
        match &c {
            Command::Matrix {
                study, per_cell, ..
            } => {
                assert_eq!(study.dies, 12);
                assert!(!per_cell);
            }
            other => panic!("{other:?}"),
        }
        let out = c.run().unwrap();
        assert!(out.contains("12 dies × 18 cells"), "{out}");
        assert!(out.contains("fault rate 0.02, mitigation on"), "{out}");
        // Header plus one row per cell.
        assert_eq!(out.lines().count(), 19, "{out}");
        for label in ["buck", "dldo", "dlr", "TT", "SS", "FF", "clean", "faulted"] {
            assert!(out.contains(label), "missing {label}: {out}");
        }

        let serial = parse(&["matrix", "--dies", "12", "--seed", "9", "--jobs", "1"])
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.replace("2 jobs", "1 jobs"), serial);
    }

    #[test]
    fn matrix_per_cell_reference_mode_is_byte_identical() {
        let fused = parse(&["matrix", "--dies", "10", "--seed", "9", "--jobs", "2"])
            .unwrap()
            .run()
            .unwrap();
        let per_cell = parse(&[
            "matrix",
            "--dies",
            "10",
            "--seed",
            "9",
            "--jobs",
            "2",
            "--per-cell",
        ])
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(fused, per_cell);

        // The reference mode cannot drive the fused checkpoint format.
        let e = parse(&[
            "matrix",
            "--dies",
            "10",
            "--per-cell",
            "--checkpoint",
            "/tmp/never-written.svcp",
        ])
        .unwrap()
        .run()
        .unwrap_err();
        assert!(e.contains("fused"), "{e}");
    }

    #[test]
    fn profile_phases_json_writes_the_profile_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("subvt-cli-profile-{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_owned();

        let out = parse(&[
            "matrix",
            "--dies",
            "8",
            "--seed",
            "9",
            "--profile-phases-json",
            &path_str,
        ])
        .unwrap()
        .run()
        .unwrap();
        // The JSON flag alone does not alter the report text.
        assert!(!out.contains("phase profile"), "{out}");

        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("subvt-phase-profile-v1"), "{json}");
        for key in [
            "shared_draw_nanos",
            "fault_walk_nanos",
            "draw_nanos",
            "total_nanos",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
    }

    #[test]
    fn fig6_reports_its_solver() {
        let c = parse(&["fig6", "--solver", "rk4"]).unwrap();
        assert_eq!(
            c,
            Command::Fig6 {
                solver: SolverMode::Rk4
            }
        );
        let out = c.run().unwrap();
        assert!(out.contains("solver: rk4"), "{out}");
    }

    #[test]
    fn supply_and_solver_flags_are_validated() {
        assert!(parse(&["yield", "--supply", "battery"]).is_err());
        assert!(parse(&["yield", "--supply"]).is_err());
        assert!(parse(&["fig6", "--solver", "euler"]).is_err());
        assert!(parse(&["fig6", "--solver"]).is_err());
    }
}
