//! The `subvt` command-line tool: quick access to the model (MEP
//! lookup, delays, sensing, sweeps) and the paper's experiments.

use std::process::ExitCode;

use subvt::cli::Command;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", subvt::cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match command.run() {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
