//! # subvt — variation resilient adaptive controller for subthreshold circuits
//!
//! A full Rust reproduction of **Mishra, Al-Hashimi & Zwolinski,
//! *"Variation Resilient Adaptive Controller for Subthreshold
//! Circuits"*, DATE 2009**: an all-digital adaptive supply-voltage
//! controller that senses process/temperature variation with a
//! time-to-digital-converter (TDC) delay replica and retargets an
//! 18.75 mV-resolution DC-DC converter so subthreshold logic keeps
//! operating at its minimum-energy point (MEP).
//!
//! This facade crate re-exports the whole stack:
//!
//! | Crate | Role |
//! |---|---|
//! | [`subvt_device`] | 0.13 µm EKV device models, delay/energy physics, MEP analysis, Monte-Carlo variation |
//! | [`subvt_sim`] | mixed-mode kernel: event-driven gates + RK4 analog ODE + traces |
//! | [`subvt_digital`] | RTL primitives: FIFO, counters, encoder, comparator, LUT, PWM |
//! | [`subvt_tdc`] | the novel TDC variation sensor (delay line, quantizer, signatures) |
//! | [`subvt_dcdc`] | the all-digital buck converter (power array, LC filter, PWM loop) |
//! | [`subvt_loads`] | ring-oscillator and 9-tap FIR loads, workload generators |
//! | [`subvt_exec`] | deterministic parallel execution engine + streaming statistics |
//! | [`subvt_core`] | the adaptive controller itself + experiments and baselines |
//!
//! ## Quickstart
//!
//! ```
//! use subvt::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Where is the minimum-energy point of the paper's ring oscillator?
//! let tech = Technology::st_130nm();
//! let ring = CircuitProfile::ring_oscillator();
//! let mep = find_mep(&tech, &ring, Environment::nominal(), Volts(0.12), Volts(0.6))?;
//! assert!((mep.vopt.millivolts() - 200.0).abs() < 5.0); // paper: 200 mV at TT
//!
//! // Run the paper's worked example: TT-designed controller on slow silicon.
//! let report = savings_experiment(&Scenario::paper_worked_example())?;
//! assert_eq!(report.compensated.compensation, 1); // the 1-LSB correction
//! assert!(report.savings_vs_fixed() > 0.3);       // "up to 55%" savings
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use subvt_core;
pub use subvt_dcdc;
pub use subvt_device;
pub use subvt_digital;
pub use subvt_exec;
pub use subvt_loads;
pub use subvt_regulators;
pub use subvt_rng;
pub use subvt_scenario;
pub use subvt_sim;
pub use subvt_tdc;

/// The most commonly used items across the stack, for glob import.
pub mod prelude {
    pub use subvt_core::{
        compare_dither, compare_idle_policies, design_rate_controller, fig6_schedule,
        overhead_per_cycle, run_transient, run_with_drift, savings_experiment, AbbCompensator,
        AdaptiveController, BootSequence, BootState, CompensationPolicy, ControllerConfig,
        ControllerInventory, DitherPlan, DriftSchedule, FaultPlan, NetSavings, RateController,
        RunSummary, SavingsReport, Scenario, StudyArgs, StudyConfig, SupplyBackendKind, SupplyKind,
        SupplyPolicy, SupplySim, YieldReport, YieldSpec, YieldSummary,
    };
    pub use subvt_dcdc::{
        ConverterParams, DcDcConverter, IdealConverter, ModulationMode, NoLoad, ResistiveLoad,
    };
    pub use subvt_device::{
        energy_per_cycle, energy_sweep, find_mep, sizing_sweep, BodyBias, BodyEffect,
        CircuitProfile, DieVariation, Environment, GateKind, GateMismatch, GateTiming, Joules,
        ProcessCorner, Seconds, Technology, VariationModel, Volts,
    };
    pub use subvt_digital::{Comparison, Fifo, MagnitudeComparator, PwmGenerator, VoltageLut};
    pub use subvt_exec::{
        par_fold_chunked, par_map_indexed, CancelToken, ExecConfig, QuantileSketch, Welford,
    };
    pub use subvt_loads::{
        CircuitLoad, FirFilter, RingOscillator, RippleCarryAdder, WorkloadPattern, WorkloadSource,
    };
    pub use subvt_tdc::{
        reproduce_table1, voltage_word, word_voltage, CounterSensor, DelayLine, Quantizer,
        RefClock, SensorConfig, VariationSensor, VernierTdc,
    };
}
